//! Tokenizer for the SPARQL subset.

use crate::error::SparqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<...>` IRI reference (content without brackets).
    IriRef(String),
    /// Prefixed name `pfx:local` (either part may be empty).
    PName(String, String),
    /// `?name` / `$name`.
    Var(String),
    /// Blank node label `_:b`.
    BlankLabel(String),
    /// String literal content (unescaped), with optional language tag or
    /// datatype recorded by the parser from following tokens.
    String(String),
    /// Language tag from `@en-us`.
    LangTag(String),
    /// Integer literal.
    Integer(i64),
    /// Decimal/double literal.
    Double(f64),
    /// Bare keyword or identifier (uppercased for keywords at parse time).
    Word(String),
    /// `a` is also a Word; punctuation below.
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `/`
    Slash,
    /// `|`
    Pipe,
    /// `^` (path inverse)
    Caret,
    /// `^^` (datatype)
    CaretCaret,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `?` as path modifier is indistinguishable from an empty var at lex
    /// time; a lone `?` with no name lexes to `QuestionMark`.
    QuestionMark,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

/// Tokenizes a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SparqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    tokens.push(Token::Pipe);
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(SparqlError::Parse(format!("stray '&' at byte {i}")));
                }
            }
            '^' => {
                if bytes.get(i + 1) == Some(&b'^') {
                    tokens.push(Token::CaretCaret);
                    i += 2;
                } else {
                    tokens.push(Token::Caret);
                    i += 1;
                }
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '<' => {
                // Either an IRIREF or a comparison. An IRIREF closes with
                // '>' before any whitespace or quote.
                if let Some(end) = scan_iri_end(bytes, i + 1) {
                    let iri = &input[i + 1..end];
                    tokens.push(Token::IriRef(iri.to_string()));
                    i = end + 1;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '?' | '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_name_char(bytes[j]) {
                    j += 1;
                }
                if j == start {
                    tokens.push(Token::QuestionMark);
                    i += 1;
                } else {
                    tokens.push(Token::Var(input[start..j].to_string()));
                    i = j;
                }
            }
            '"' | '\'' => {
                let quote = bytes[i];
                let mut j = i + 1;
                let mut value = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(SparqlError::Parse("unterminated string".into()));
                    }
                    match bytes[j] {
                        b'\\' => {
                            let esc = *bytes.get(j + 1).ok_or_else(|| {
                                SparqlError::Parse("dangling escape".into())
                            })?;
                            value.push(match esc {
                                b'n' => '\n',
                                b'r' => '\r',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                b'\'' => '\'',
                                other => {
                                    return Err(SparqlError::Parse(format!(
                                        "bad escape \\{}",
                                        other as char
                                    )))
                                }
                            });
                            j += 2;
                        }
                        q if q == quote => {
                            j += 1;
                            break;
                        }
                        _ => {
                            // Preserve multi-byte UTF-8 sequences intact.
                            let ch_len = utf8_len(bytes[j]);
                            value.push_str(&input[j..j + ch_len]);
                            j += ch_len;
                        }
                    }
                }
                tokens.push(Token::String(value));
                i = j;
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'-')
                {
                    j += 1;
                }
                if j == start {
                    return Err(SparqlError::Parse("empty language tag".into()));
                }
                tokens.push(Token::LangTag(input[start..j].to_string()));
                i = j;
            }
            '_' if bytes.get(i + 1) == Some(&b':') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && is_name_char(bytes[j]) {
                    j += 1;
                }
                tokens.push(Token::BlankLabel(input[start..j].to_string()));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_double = false;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_double = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    is_double = true;
                    j += 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &input[start..j];
                if is_double {
                    tokens.push(Token::Double(text.parse().map_err(|_| {
                        SparqlError::Parse(format!("bad number {text}"))
                    })?));
                } else {
                    tokens.push(Token::Integer(text.parse().map_err(|_| {
                        SparqlError::Parse(format!("bad number {text}"))
                    })?));
                }
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_name_char(bytes[j]) {
                    j += 1;
                }
                // Prefixed name? `pfx:local` (local may be empty or start
                // with '#'/digits etc. — we accept name chars and '#').
                if j < bytes.len() && bytes[j] == b':' {
                    let prefix = input[start..j].to_string();
                    let lstart = j + 1;
                    let mut k = lstart;
                    while k < bytes.len() && is_local_char(bytes[k]) {
                        k += 1;
                    }
                    tokens.push(Token::PName(prefix, input[lstart..k].to_string()));
                    i = k;
                } else {
                    tokens.push(Token::Word(input[start..j].to_string()));
                    i = j;
                }
            }
            ':' => {
                // Default-prefix name `:local`.
                let lstart = i + 1;
                let mut k = lstart;
                while k < bytes.len() && is_local_char(bytes[k]) {
                    k += 1;
                }
                tokens.push(Token::PName(String::new(), input[lstart..k].to_string()));
                i = k;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            other => {
                return Err(SparqlError::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )));
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

fn scan_iri_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut j = start;
    while j < bytes.len() {
        match bytes[j] {
            b'>' => return Some(j),
            b' ' | b'\t' | b'\n' | b'\r' | b'"' | b'{' | b'}' => return None,
            _ => j += 1,
        }
    }
    None
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn is_local_char(b: u8) -> bool {
    is_name_char(b) || b == b'-' || b == b'.' || b == b'#'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_vs_less_than() {
        let toks = tokenize("?x < <http://pg/v1>").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Var("x".into()),
                Token::Lt,
                Token::IriRef("http://pg/v1".into())
            ]
        );
    }

    #[test]
    fn pname_with_hash_local() {
        let toks = tokenize("?n k:hasTag \"#webseries\"").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Var("n".into()),
                Token::PName("k".into(), "hasTag".into()),
                Token::String("#webseries".into())
            ]
        );
    }

    #[test]
    fn default_prefix_pname() {
        let toks = tokenize(":MIT").unwrap();
        assert_eq!(toks, vec![Token::PName(String::new(), "MIT".into())]);
    }

    #[test]
    fn operators() {
        let toks = tokenize("<= >= != = && || ! ^^ ^").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::Eq,
                Token::AndAnd,
                Token::OrOr,
                Token::Bang,
                Token::CaretCaret,
                Token::Caret
            ]
        );
    }

    #[test]
    fn numbers() {
        let toks = tokenize("42 3.25 1e3").unwrap();
        assert_eq!(
            toks,
            vec![Token::Integer(42), Token::Double(3.25), Token::Double(1000.0)]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize(r#""a\"b\nc""#).unwrap();
        assert_eq!(toks, vec![Token::String("a\"b\nc".into())]);
    }

    #[test]
    fn lang_tag() {
        let toks = tokenize("\"train\"@en-us").unwrap();
        assert_eq!(
            toks,
            vec![Token::String("train".into()), Token::LangTag("en-us".into())]
        );
    }

    #[test]
    fn typed_literal_tokens() {
        let toks = tokenize("\"23\"^^<http://www.w3.org/2001/XMLSchema#int>").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::String("23".into()),
                Token::CaretCaret,
                Token::IriRef("http://www.w3.org/2001/XMLSchema#int".into())
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT # comment\n ?x").unwrap();
        assert_eq!(toks, vec![Token::Word("SELECT".into()), Token::Var("x".into())]);
    }

    #[test]
    fn path_tokens() {
        let toks = tokenize("(r:knows|r:follows)+").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::PName("r".into(), "knows".into()),
                Token::Pipe,
                Token::PName("r".into(), "follows".into()),
                Token::RParen,
                Token::Plus
            ]
        );
    }

    #[test]
    fn blank_label() {
        let toks = tokenize("_:b1").unwrap();
        assert_eq!(toks, vec![Token::BlankLabel("b1".into())]);
    }

    #[test]
    fn utf8_in_strings() {
        let toks = tokenize("\"café 😀\"").unwrap();
        assert_eq!(toks, vec![Token::String("café 😀".into())]);
    }
}
