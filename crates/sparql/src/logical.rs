//! The logical query algebra — the optimizer's intermediate form.
//!
//! Compilation is layered (the classic optimizer pipeline the paper
//! attributes to Oracle's SEM_MATCH translation): the AST is first
//! *lowered* into this algebra (slot-resolved variables, dictionary-ID
//! constants, paths expanded), then a rule-based rewrite pass runs over
//! it ([`crate::rewrite`]), and only then does the physical planner
//! ([`crate::cost`]) pick join orders and strategies, emitting the
//! executable [`crate::plan::Node`] tree.
//!
//! The algebra deliberately reuses the compiled leaf types
//! ([`CTriple`], [`CExpr`], [`PathStep`]): the logical/physical split is
//! about *structure* (what joins what, which filters apply where), not
//! about re-encoding terms.

use std::collections::HashSet;

use rdf_model::{Term, TermId};

use crate::expr::CExpr;
use crate::plan::{CAggregate, CGraph, CPos, CProj, CTriple, PathStep, VarTable};

/// A `?v = <const>` equality proven by a conjunctive filter: the variable
/// is *pinned* to one term for the whole scope of the filter. Recorded by
/// lowering; consumed by the pin-pushdown rewrite, which substitutes the
/// resolved ID into scan patterns.
#[derive(Debug, Clone)]
pub struct Pin {
    /// The pinned variable's slot.
    pub slot: usize,
    /// The pinned constant.
    pub term: Term,
    /// Its dictionary ID (`None` = absent from the store).
    pub id: Option<TermId>,
}

/// A logical pattern-tree node. Mirrors [`crate::plan::Node`] minus every
/// physical decision: BGPs are unordered triple sets, not planned step
/// chains, and no join strategies exist yet.
#[derive(Debug, Clone)]
pub enum LNode {
    /// An unordered basic graph pattern.
    Bgp(Vec<CTriple>),
    /// A closure-path step (`p*`, `p+`, `p?`).
    Path(PathStep),
    /// Sequential join of children.
    Join(Vec<LNode>),
    /// Filters over the child's solutions, plus any pins lowered from
    /// them.
    Filter {
        /// Compiled filter expressions (conjunctive).
        exprs: Vec<CExpr>,
        /// `?v = <const>` pins extracted from the expressions.
        pins: Vec<Pin>,
        /// The filtered subtree.
        inner: Box<LNode>,
    },
    /// Union of two branches.
    Union(Box<LNode>, Box<LNode>),
    /// Left outer join.
    Optional(Box<LNode>, Box<LNode>),
    /// A nested sub-select (its own projection scope).
    SubSelect(Box<LSelect>),
    /// Inline VALUES rows.
    Values {
        /// Target slots.
        slots: Vec<usize>,
        /// Rows; `None` = UNDEF.
        rows: Vec<Vec<Option<Term>>>,
    },
    /// `BIND(expr AS ?v)`.
    Extend(usize, CExpr),
    /// `MINUS { ... }`.
    Minus(Box<LNode>),
    /// A subtree the rewrite pass proved can produce no solutions
    /// (missing constant, constant-false filter). The original subtree is
    /// kept for rendering and variable bookkeeping; the physical planner
    /// emits a zero-cost empty scan for anything but a plain BGP (whose
    /// own unsatisfiable triple already short-circuits execution).
    Unsatisfiable(Box<LNode>),
}

/// A logical SELECT (top-level or nested). Identical to
/// [`crate::plan::CSelect`] except the WHERE tree is logical.
#[derive(Debug, Clone)]
pub struct LSelect {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Projected columns in order.
    pub projection: Vec<CProj>,
    /// Aggregates referenced by projection expressions.
    pub aggregates: Vec<CAggregate>,
    /// GROUP BY slots.
    pub group_slots: Vec<usize>,
    /// HAVING conditions.
    pub having: Vec<CExpr>,
    /// WHERE tree.
    pub root: LNode,
    /// ORDER BY keys (expr, descending).
    pub order_by: Vec<(CExpr, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: Option<usize>,
}

/// Logical query forms.
#[derive(Debug, Clone)]
pub enum LForm {
    /// `SELECT`.
    Select(LSelect),
    /// `ASK`.
    Ask(LNode),
    /// `CONSTRUCT`.
    Construct(Vec<crate::ast::QuadTemplate>, LSelect),
}

/// A lowered query: the form plus every `EXISTS { ... }` pattern, each
/// paired with a snapshot of the slots certainly bound at its filter site
/// (the physical planner seeds BGP planning with that bound set).
#[derive(Debug)]
pub struct LQuery {
    /// The query form.
    pub form: LForm,
    /// Compiled EXISTS patterns in [`CExpr::ExistsRef`] index order.
    pub exists: Vec<(LNode, HashSet<usize>)>,
}

/// All variable slots a logical node can bind.
pub fn lnode_vars(node: &LNode) -> Vec<usize> {
    let mut out = Vec::new();
    collect_vars(node, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_vars(node: &LNode, out: &mut Vec<usize>) {
    match node {
        LNode::Bgp(tps) => {
            for t in tps {
                out.extend(t.var_slots());
            }
        }
        LNode::Path(p) => {
            if let CPos::Var(s) = &p.s {
                out.push(*s);
            }
            if let CPos::Var(s) = &p.o {
                out.push(*s);
            }
        }
        LNode::Join(children) => {
            for c in children {
                collect_vars(c, out);
            }
        }
        LNode::Filter { inner, .. } => collect_vars(inner, out),
        LNode::Union(a, b) | LNode::Optional(a, b) => {
            collect_vars(a, out);
            collect_vars(b, out);
        }
        LNode::SubSelect(sel) => out.extend(sel.projection.iter().map(|p| p.slot)),
        LNode::Values { slots, .. } => out.extend(slots.iter().copied()),
        LNode::Extend(slot, _) => out.push(*slot),
        LNode::Minus(_) => {}
        LNode::Unsatisfiable(inner) => collect_vars(inner, out),
    }
}

/// Renders the rewritten logical plan as indented text — the
/// `EXPLAIN LOGICAL` output (`pgq --explain-logical`). The header lists
/// which rewrite rules fired.
pub fn render(vars: &VarTable, query: &LQuery, applied_rules: &[&'static str]) -> String {
    let mut out = String::new();
    out.push_str("LOGICAL PLAN");
    if applied_rules.is_empty() {
        out.push_str(" (no rewrites applied)\n");
    } else {
        out.push_str(" (rewrites: ");
        out.push_str(&applied_rules.join(", "));
        out.push_str(")\n");
    }
    match &query.form {
        LForm::Select(sel) => render_select(&mut out, vars, sel, 0),
        LForm::Ask(node) => {
            out.push_str("ASK\n");
            render_node(&mut out, vars, node, 1);
        }
        LForm::Construct(templates, sel) => {
            out.push_str(&format!("CONSTRUCT ({} template quads)\n", templates.len()));
            render_select(&mut out, vars, sel, 1);
        }
    }
    for (i, (node, _)) in query.exists.iter().enumerate() {
        out.push_str(&format!("EXISTS #{i}\n"));
        render_node(&mut out, vars, node, 1);
    }
    out
}

fn render_select(out: &mut String, vars: &VarTable, sel: &LSelect, depth: usize) {
    let pad = "  ".repeat(depth);
    let cols: Vec<String> = sel
        .projection
        .iter()
        .map(|p| format!("?{}", vars.name(p.slot)))
        .collect();
    out.push_str(&format!(
        "{pad}SELECT{} {}\n",
        if sel.distinct { " DISTINCT" } else { "" },
        cols.join(" ")
    ));
    render_node(out, vars, &sel.root, depth + 1);
}

fn render_node(out: &mut String, vars: &VarTable, node: &LNode, depth: usize) {
    let pad = "  ".repeat(depth);
    match node {
        LNode::Bgp(tps) => {
            out.push_str(&format!("{pad}BGP ({} triple patterns)\n", tps.len()));
            for t in tps {
                out.push_str(&format!(
                    "{pad}  {} {} {}{}\n",
                    render_pos(vars, &t.s),
                    render_pos(vars, &t.p),
                    render_pos(vars, &t.o),
                    match &t.g {
                        CGraph::Any | CGraph::Default => String::new(),
                        CGraph::Var(s) => format!(" GRAPH ?{}", vars.name(*s)),
                        CGraph::Const(term, _) => format!(" GRAPH {term}"),
                    }
                ));
            }
        }
        LNode::Path(p) => {
            out.push_str(&format!(
                "{pad}PATH {} -[closure]-> {}\n",
                render_pos(vars, &p.s),
                render_pos(vars, &p.o)
            ));
        }
        LNode::Join(children) => {
            out.push_str(&format!("{pad}JOIN\n"));
            for c in children {
                render_node(out, vars, c, depth + 1);
            }
        }
        LNode::Filter { exprs, pins, inner } => {
            let pin_text = if pins.is_empty() {
                String::new()
            } else {
                let rendered: Vec<String> = pins
                    .iter()
                    .map(|p| format!("?{} = {}", vars.name(p.slot), p.term))
                    .collect();
                format!(" [pins: {}]", rendered.join(", "))
            };
            out.push_str(&format!("{pad}FILTER ({} exprs){pin_text}\n", exprs.len()));
            render_node(out, vars, inner, depth + 1);
        }
        LNode::Union(a, b) => {
            out.push_str(&format!("{pad}UNION\n"));
            render_node(out, vars, a, depth + 1);
            render_node(out, vars, b, depth + 1);
        }
        LNode::Optional(a, b) => {
            out.push_str(&format!("{pad}OPTIONAL\n"));
            render_node(out, vars, a, depth + 1);
            render_node(out, vars, b, depth + 1);
        }
        LNode::SubSelect(sel) => {
            out.push_str(&format!("{pad}SUBQUERY\n"));
            render_select(out, vars, sel, depth + 1);
        }
        LNode::Values { slots, rows } => {
            let names: Vec<String> =
                slots.iter().map(|&s| format!("?{}", vars.name(s))).collect();
            out.push_str(&format!(
                "{pad}VALUES {} ({} rows)\n",
                names.join(" "),
                rows.len()
            ));
        }
        LNode::Extend(slot, _) => {
            out.push_str(&format!("{pad}BIND -> ?{}\n", vars.name(*slot)));
        }
        LNode::Minus(inner) => {
            out.push_str(&format!("{pad}MINUS\n"));
            render_node(out, vars, inner, depth + 1);
        }
        LNode::Unsatisfiable(inner) => {
            out.push_str(&format!("{pad}UNSATISFIABLE (yields no solutions)\n"));
            render_node(out, vars, inner, depth + 1);
        }
    }
}

fn render_pos(vars: &VarTable, pos: &CPos) -> String {
    match pos {
        CPos::Var(s) => format!("?{}", vars.name(*s)),
        CPos::Const(t, _) => t.to_string(),
    }
}
