//! Plan rendering — the Table 5 analogue.
//!
//! For each planned triple pattern the output shows the bound components
//! (constants in brackets), the chosen index, and whether the access is an
//! index range scan probed per binding (NLJ) or a full scan feeding a hash
//! join, e.g.:
//!
//! ```text
//! 1: ?x <http://pg/r/follows> ?y  [P=<http://pg/r/follows>] PCSGM range scan (NLJ)
//! ```

use std::fmt::Write as _;

use crate::plan::{CForm, CGraph, CPos, CSelect, CompiledQuery, Node, Step, Strategy, VarTable};

/// Renders a compiled query plan as indented text.
pub fn render(compiled: &CompiledQuery) -> String {
    let mut out = String::new();
    match &compiled.form {
        CForm::Select(sel) => render_select(&mut out, &compiled.vars, sel, 0),
        CForm::Ask(node) => {
            let _ = writeln!(out, "ASK");
            render_node(&mut out, &compiled.vars, node, 1, &mut 1);
        }
        CForm::Construct(templates, sel) => {
            let _ = writeln!(out, "CONSTRUCT ({} template quads)", templates.len());
            render_select(&mut out, &compiled.vars, sel, 1);
        }
    }
    out
}

fn render_select(out: &mut String, vars: &VarTable, sel: &CSelect, depth: usize) {
    let pad = "  ".repeat(depth);
    let cols: Vec<String> = sel
        .projection
        .iter()
        .map(|p| format!("?{}", vars.name(p.slot)))
        .collect();
    let _ = writeln!(
        out,
        "{pad}SELECT{} {}",
        if sel.distinct { " DISTINCT" } else { "" },
        cols.join(" ")
    );
    if !sel.group_slots.is_empty() {
        let g: Vec<String> = sel
            .group_slots
            .iter()
            .map(|&s| format!("?{}", vars.name(s)))
            .collect();
        let _ = writeln!(out, "{pad}GROUP BY {}", g.join(" "));
    }
    let mut counter = 1usize;
    render_node(out, vars, &sel.root, depth + 1, &mut counter);
    if !sel.order_by.is_empty() {
        let _ = writeln!(out, "{pad}ORDER BY ({} keys)", sel.order_by.len());
    }
    if sel.limit.is_some() || sel.offset.is_some() {
        let _ = writeln!(out, "{pad}SLICE limit={:?} offset={:?}", sel.limit, sel.offset);
    }
}

fn render_node(out: &mut String, vars: &VarTable, node: &Node, depth: usize, counter: &mut usize) {
    let pad = "  ".repeat(depth);
    match node {
        Node::Steps(steps) => {
            for step in steps {
                let _ = writeln!(out, "{pad}{}: {}", counter, render_step(vars, step));
                *counter += 1;
            }
        }
        Node::Path(p) => {
            let _ = writeln!(
                out,
                "{pad}{}: PATH {} -[closure]-> {}",
                counter,
                render_pos(vars, &p.s),
                render_pos(vars, &p.o)
            );
            *counter += 1;
        }
        Node::Join(children) => {
            for child in children {
                render_node(out, vars, child, depth, counter);
            }
        }
        Node::Filter(filters, inner) => {
            render_node(out, vars, inner, depth, counter);
            let _ = writeln!(out, "{pad}FILTER ({} predicates)", filters.len());
        }
        Node::Union(a, b) => {
            let _ = writeln!(out, "{pad}UNION");
            render_node(out, vars, a, depth + 1, counter);
            let _ = writeln!(out, "{pad}  --");
            render_node(out, vars, b, depth + 1, counter);
        }
        Node::Optional(a, b) => {
            render_node(out, vars, a, depth, counter);
            let _ = writeln!(out, "{pad}OPTIONAL");
            render_node(out, vars, b, depth + 1, counter);
        }
        Node::SubSelect(sel) => {
            let _ = writeln!(out, "{pad}SUBQUERY");
            render_select(out, vars, sel, depth + 1);
        }
        Node::Values { slots, rows } => {
            let names: Vec<String> = slots.iter().map(|&s| format!("?{}", vars.name(s))).collect();
            let _ = writeln!(out, "{pad}VALUES {} ({} rows)", names.join(" "), rows.len());
        }
        Node::Extend(slot, _) => {
            let _ = writeln!(out, "{pad}BIND -> ?{}", vars.name(*slot));
        }
        Node::Minus(inner) => {
            let _ = writeln!(out, "{pad}MINUS");
            render_node(out, vars, inner, depth + 1, counter);
        }
    }
}

fn render_step(vars: &VarTable, step: &Step) -> String {
    let mut bound = Vec::new();
    if let CPos::Const(t, _) = &step.triple.s {
        bound.push(format!("S={t}"));
    }
    if let CPos::Const(t, _) = &step.triple.p {
        bound.push(format!("P={t}"));
    }
    if let CPos::Const(t, _) = &step.triple.o {
        bound.push(format!("C={t}"));
    }
    if let CGraph::Const(t, _) = &step.triple.g {
        bound.push(format!("G={t}"));
    }
    let access = if step.triple.unsatisfiable() {
        "empty scan (constant absent from store)".to_string()
    } else {
        step.access
            .as_ref()
            .map(|a| {
                if a.is_full_scan() {
                    format!("{} full scan", a.index)
                } else {
                    format!("{} range scan", a.index)
                }
            })
            .unwrap_or_else(|| "no access path".to_string())
    };
    let strategy = match &step.strategy {
        Strategy::IndexNlj => "NLJ".to_string(),
        Strategy::HashJoin { join_slots } => {
            let keys: Vec<String> = join_slots
                .iter()
                .map(|&s| format!("?{}", vars.name(s)))
                .collect();
            format!("HASH JOIN on {}", keys.join(","))
        }
    };
    format!(
        "{} {} {}{}  [{}] {} ({}) ~{} rows",
        render_pos(vars, &step.triple.s),
        render_pos(vars, &step.triple.p),
        render_pos(vars, &step.triple.o),
        match &step.triple.g {
            CGraph::Any | CGraph::Default => String::new(),
            CGraph::Var(s) => format!(" GRAPH ?{}", vars.name(*s)),
            CGraph::Const(t, _) => format!(" GRAPH {t}"),
        },
        bound.join(" and "),
        access,
        strategy,
        step.est_scan
    )
}

fn render_pos(vars: &VarTable, pos: &CPos) -> String {
    match pos {
        CPos::Var(s) => format!("?{}", vars.name(*s)),
        CPos::Const(t, _) => t.to_string(),
    }
}
