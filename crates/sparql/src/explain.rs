//! Plan rendering — the Table 5 analogue — plus `EXPLAIN ANALYZE`.
//!
//! For each planned triple pattern the output shows the bound components
//! (constants in brackets), the chosen index, and whether the access is an
//! index range scan probed per binding (NLJ) or a full scan feeding a hash
//! join, e.g.:
//!
//! ```text
//! 1: ?x <http://pg/r/follows> ?y  [P=<http://pg/r/follows>] PCSGM range scan (NLJ)
//! ```
//!
//! [`render_analyze`] re-renders the same plan annotated with the actual
//! rows, loops (input rows), and inclusive time each step recorded during
//! a profiled execution ([`crate::exec::execute_profiled`]):
//!
//! ```text
//! 1: ?x <...follows> ?y  [P=<...>] PCSGM range scan (NLJ) ~81 rows -> ~81 out (actual: rows=81 loops=1 time=0.113ms Q=1.0)
//! ```
//!
//! `Q=` is the step's Q-error — `max(est, actual) / min(est, actual)` of
//! the optimizer's output-row estimate, 1.0 being a perfect estimate.

use std::fmt::Write as _;

use crate::exec::ExecProfile;
use crate::plan::{CForm, CGraph, CPos, CSelect, CompiledQuery, Node, Step, Strategy, VarTable};
use crate::profile::StepProfile;

/// Renders a compiled query plan as indented text.
pub fn render(compiled: &CompiledQuery) -> String {
    render_with(compiled, None)
}

/// Renders a compiled query plan annotated with the actuals from a
/// profiled execution — the `EXPLAIN ANALYZE` output. Steps the executor
/// never reached (e.g. behind an empty input) are marked
/// `never executed`.
pub fn render_analyze(compiled: &CompiledQuery, profile: &ExecProfile) -> String {
    render_with(compiled, Some(profile))
}

fn render_with(compiled: &CompiledQuery, profile: Option<&ExecProfile>) -> String {
    let mut out = String::new();
    match &compiled.form {
        CForm::Select(sel) => render_select(&mut out, &compiled.vars, sel, 0, profile),
        CForm::Ask(node) => {
            let _ = writeln!(out, "ASK");
            render_node(&mut out, &compiled.vars, node, 1, &mut 1, profile);
        }
        CForm::Construct(templates, sel) => {
            let _ = writeln!(out, "CONSTRUCT ({} template quads)", templates.len());
            render_select(&mut out, &compiled.vars, sel, 1, profile);
        }
    }
    if let Some(p) = profile {
        let _ = writeln!(out, "Execution time: {}", format_nanos(p.wall_nanos));
    }
    out
}

/// Collects one [`StepProfile`] per numbered plan step, in EXPLAIN
/// numbering order — the structured counterpart of [`render_analyze`].
pub fn step_profiles(compiled: &CompiledQuery, profile: &ExecProfile) -> Vec<StepProfile> {
    let mut steps = Vec::new();
    match &compiled.form {
        CForm::Select(sel) | CForm::Construct(_, sel) => {
            collect_select(&compiled.vars, sel, profile, &mut steps)
        }
        CForm::Ask(node) => {
            collect_node(&compiled.vars, node, &mut 1, profile, &mut steps)
        }
    }
    steps
}

fn collect_select(
    vars: &VarTable,
    sel: &CSelect,
    profile: &ExecProfile,
    out: &mut Vec<StepProfile>,
) {
    // Mirrors render_select: each SELECT scope restarts step numbering.
    let mut local = 1usize;
    collect_node(vars, &sel.root, &mut local, profile, out);
}

fn collect_node(
    vars: &VarTable,
    node: &Node,
    counter: &mut usize,
    profile: &ExecProfile,
    out: &mut Vec<StepProfile>,
) {
    match node {
        Node::Steps(steps) => {
            for step in steps {
                let tally = profile.step(step);
                out.push(StepProfile {
                    ordinal: *counter,
                    pattern: step_pattern(vars, step),
                    index: step_access(step),
                    strategy: step_strategy(vars, step),
                    est_rows: step.est_scan as u64,
                    est_out_rows: step.est_out,
                    executed: tally.is_some(),
                    actual_rows: tally.map(|t| t.rows).unwrap_or(0),
                    loops: tally.map(|t| t.loops).unwrap_or(0),
                    nanos: tally.map(|t| t.nanos).unwrap_or(0),
                });
                *counter += 1;
            }
        }
        Node::Path(p) => {
            let tally = profile.path(p);
            out.push(StepProfile {
                ordinal: *counter,
                pattern: format!(
                    "PATH {} -[closure]-> {}",
                    render_pos(vars, &p.s),
                    render_pos(vars, &p.o)
                ),
                index: "closure".to_string(),
                strategy: "PATH".to_string(),
                est_rows: 0,
                est_out_rows: 0,
                executed: tally.is_some(),
                actual_rows: tally.map(|t| t.rows).unwrap_or(0),
                loops: tally.map(|t| t.loops).unwrap_or(0),
                nanos: tally.map(|t| t.nanos).unwrap_or(0),
            });
            *counter += 1;
        }
        Node::Join(children) => {
            for child in children {
                collect_node(vars, child, counter, profile, out);
            }
        }
        Node::Filter(_, inner) | Node::Minus(inner) => {
            collect_node(vars, inner, counter, profile, out)
        }
        Node::Union(a, b) | Node::Optional(a, b) => {
            collect_node(vars, a, counter, profile, out);
            collect_node(vars, b, counter, profile, out);
        }
        Node::SubSelect(sel) => collect_select(vars, sel, profile, out),
        Node::Values { .. } | Node::Extend(..) => {}
    }
}

fn render_select(
    out: &mut String,
    vars: &VarTable,
    sel: &CSelect,
    depth: usize,
    profile: Option<&ExecProfile>,
) {
    let pad = "  ".repeat(depth);
    let cols: Vec<String> = sel
        .projection
        .iter()
        .map(|p| format!("?{}", vars.name(p.slot)))
        .collect();
    let _ = writeln!(
        out,
        "{pad}SELECT{} {}",
        if sel.distinct { " DISTINCT" } else { "" },
        cols.join(" ")
    );
    if !sel.group_slots.is_empty() {
        let g: Vec<String> = sel
            .group_slots
            .iter()
            .map(|&s| format!("?{}", vars.name(s)))
            .collect();
        let _ = writeln!(out, "{pad}GROUP BY {}", g.join(" "));
    }
    let mut counter = 1usize;
    render_node(out, vars, &sel.root, depth + 1, &mut counter, profile);
    if !sel.order_by.is_empty() {
        let _ = writeln!(out, "{pad}ORDER BY ({} keys)", sel.order_by.len());
    }
    if sel.limit.is_some() || sel.offset.is_some() {
        let _ = writeln!(out, "{pad}SLICE limit={:?} offset={:?}", sel.limit, sel.offset);
    }
}

fn render_node(
    out: &mut String,
    vars: &VarTable,
    node: &Node,
    depth: usize,
    counter: &mut usize,
    profile: Option<&ExecProfile>,
) {
    let pad = "  ".repeat(depth);
    match node {
        Node::Steps(steps) => {
            for step in steps {
                let actual = profile
                    .map(|p| format_actual(p.step(step), Some(step.est_out)))
                    .unwrap_or_default();
                let _ = writeln!(out, "{pad}{}: {}{}", counter, render_step(vars, step), actual);
                *counter += 1;
            }
        }
        Node::Path(p) => {
            let actual = profile
                .map(|pr| format_actual(pr.path(p), None))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{pad}{}: PATH {} -[closure]-> {}{}",
                counter,
                render_pos(vars, &p.s),
                render_pos(vars, &p.o),
                actual
            );
            *counter += 1;
        }
        Node::Join(children) => {
            for child in children {
                render_node(out, vars, child, depth, counter, profile);
            }
        }
        Node::Filter(filters, inner) => {
            render_node(out, vars, inner, depth, counter, profile);
            let _ = writeln!(out, "{pad}FILTER ({} predicates)", filters.len());
        }
        Node::Union(a, b) => {
            let _ = writeln!(out, "{pad}UNION");
            render_node(out, vars, a, depth + 1, counter, profile);
            let _ = writeln!(out, "{pad}  --");
            render_node(out, vars, b, depth + 1, counter, profile);
        }
        Node::Optional(a, b) => {
            render_node(out, vars, a, depth, counter, profile);
            let _ = writeln!(out, "{pad}OPTIONAL");
            render_node(out, vars, b, depth + 1, counter, profile);
        }
        Node::SubSelect(sel) => {
            let _ = writeln!(out, "{pad}SUBQUERY");
            render_select(out, vars, sel, depth + 1, profile);
        }
        Node::Values { slots, rows } => {
            let names: Vec<String> = slots.iter().map(|&s| format!("?{}", vars.name(s))).collect();
            let _ = writeln!(out, "{pad}VALUES {} ({} rows)", names.join(" "), rows.len());
        }
        Node::Extend(slot, _) => {
            let _ = writeln!(out, "{pad}BIND -> ?{}", vars.name(*slot));
        }
        Node::Minus(inner) => {
            let _ = writeln!(out, "{pad}MINUS");
            render_node(out, vars, inner, depth + 1, counter, profile);
        }
    }
}

fn format_actual(tally: Option<crate::exec::StepTally>, est_out: Option<u64>) -> String {
    match tally {
        Some(t) => {
            let q = est_out
                .map(|est| format!(" Q={:.1}", q_error(est, t.rows)))
                .unwrap_or_default();
            format!(
                " (actual: rows={} loops={} time={}{q})",
                t.rows,
                t.loops,
                format_nanos(t.nanos)
            )
        }
        None => " (actual: never executed)".to_string(),
    }
}

/// The Q-error of an estimate: `max(est, actual) / min(est, actual)`,
/// with both sides clamped to at least 1 so empty results stay finite.
/// 1.0 is a perfect estimate; the factor is symmetric in direction.
pub fn q_error(est: u64, actual: u64) -> f64 {
    let est = est.max(1) as f64;
    let actual = actual.max(1) as f64;
    (est / actual).max(actual / est)
}

/// Human formatting for nanosecond figures: `ns`, `µs`, or `ms`.
pub(crate) fn format_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{:.3}ms", nanos as f64 / 1e6)
    }
}

/// The triple-pattern part of a step line (without access/strategy).
fn step_pattern(vars: &VarTable, step: &Step) -> String {
    format!(
        "{} {} {}{}",
        render_pos(vars, &step.triple.s),
        render_pos(vars, &step.triple.p),
        render_pos(vars, &step.triple.o),
        match &step.triple.g {
            CGraph::Any | CGraph::Default => String::new(),
            CGraph::Var(s) => format!(" GRAPH ?{}", vars.name(*s)),
            CGraph::Const(t, _) => format!(" GRAPH {t}"),
        }
    )
}

/// The access-path part of a step line (index + scan kind).
fn step_access(step: &Step) -> String {
    if step.triple.unsatisfiable() {
        "empty scan (constant absent from store)".to_string()
    } else {
        step.access
            .as_ref()
            .map(|a| {
                if a.is_full_scan() {
                    format!("{} full scan", a.index)
                } else {
                    format!("{} range scan", a.index)
                }
            })
            .unwrap_or_else(|| "no access path".to_string())
    }
}

/// The join-strategy part of a step line.
fn step_strategy(vars: &VarTable, step: &Step) -> String {
    match &step.strategy {
        Strategy::IndexNlj => "NLJ".to_string(),
        Strategy::HashJoin { join_slots } => {
            let keys: Vec<String> = join_slots
                .iter()
                .map(|&s| format!("?{}", vars.name(s)))
                .collect();
            format!("HASH JOIN on {}", keys.join(","))
        }
    }
}

fn render_step(vars: &VarTable, step: &Step) -> String {
    let mut bound = Vec::new();
    if let CPos::Const(t, _) = &step.triple.s {
        bound.push(format!("S={t}"));
    }
    if let CPos::Const(t, _) = &step.triple.p {
        bound.push(format!("P={t}"));
    }
    if let CPos::Const(t, _) = &step.triple.o {
        bound.push(format!("C={t}"));
    }
    if let CGraph::Const(t, _) = &step.triple.g {
        bound.push(format!("G={t}"));
    }
    format!(
        "{}  [{}] {} ({}) ~{} rows -> ~{} out",
        step_pattern(vars, step),
        bound.join(" and "),
        step_access(step),
        step_strategy(vars, step),
        step.est_scan,
        step.est_out
    )
}

fn render_pos(vars: &VarTable, pos: &CPos) -> String {
    match pos {
        CPos::Var(s) => format!("?{}", vars.name(*s)),
        CPos::Const(t, _) => t.to_string(),
    }
}
