//! Recursive-descent parser for the SPARQL subset.

use std::collections::HashMap;

use rdf_model::{Iri, Literal, Term};
use rdf_model::vocab::{rdf, xsd};

use crate::ast::*;
use crate::error::SparqlError;
use crate::lexer::{tokenize, Token};

/// Parses a SPARQL query (`SELECT` or `ASK`, with an optional prologue).
pub fn parse_query(text: &str) -> Result<Query, SparqlError> {
    let tokens = tokenize(text)?;
    let mut p = Parser::new(tokens);
    p.parse_prologue()?;
    let query = if p.peek_keyword("SELECT") {
        Query::Select(p.parse_select()?)
    } else if p.peek_keyword("ASK") {
        p.bump();
        p.expect_optional_keyword("WHERE");
        Query::Ask(p.parse_group_graph_pattern()?)
    } else if p.peek_keyword("CONSTRUCT") {
        p.bump();
        let template = p.parse_quad_data()?;
        p.expect_keyword("WHERE")?;
        let pattern = p.parse_group_graph_pattern()?;
        let inner = SelectQuery {
            distinct: false,
            projection: Vec::new(),
            pattern,
            group_by: Vec::new(),
            having: Vec::new(),
            order_by: Vec::new(),
            limit: p.parse_trailing_limit()?,
            offset: None,
        };
        Query::Construct(template, Box::new(inner))
    } else {
        return Err(SparqlError::Parse(
            "expected SELECT or ASK after prologue".into(),
        ));
    };
    p.expect_end()?;
    Ok(query)
}

/// Parses a SPARQL 1.1 Update request.
pub fn parse_update(text: &str) -> Result<Update, SparqlError> {
    let tokens = tokenize(text)?;
    let mut p = Parser::new(tokens);
    p.parse_prologue()?;
    let update = p.parse_update_op()?;
    // Optional trailing ';'
    if p.peek() == Some(&Token::Semicolon) {
        p.bump();
    }
    p.expect_end()?;
    Ok(update)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, prefixes: HashMap::new() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SparqlError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_optional_keyword(&mut self, kw: &str) {
        let _ = self.eat_keyword(kw);
    }

    fn expect(&mut self, token: Token) -> Result<(), SparqlError> {
        if self.peek() == Some(&token) {
            self.bump();
            Ok(())
        } else {
            Err(SparqlError::Parse(format!(
                "expected {token:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_end(&self) -> Result<(), SparqlError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(SparqlError::Parse(format!(
                "trailing tokens starting at {:?}",
                self.peek()
            )))
        }
    }

    fn parse_prologue(&mut self) -> Result<(), SparqlError> {
        loop {
            if self.eat_keyword("PREFIX") {
                let (prefix, local) = match self.bump() {
                    Some(Token::PName(p, l)) => (p, l),
                    other => {
                        return Err(SparqlError::Parse(format!(
                            "expected prefix name, found {other:?}"
                        )))
                    }
                };
                if !local.is_empty() {
                    return Err(SparqlError::Parse(format!(
                        "bad prefix declaration: {prefix}:{local}"
                    )));
                }
                let iri = match self.bump() {
                    Some(Token::IriRef(iri)) => iri,
                    other => {
                        return Err(SparqlError::Parse(format!(
                            "expected IRI after PREFIX, found {other:?}"
                        )))
                    }
                };
                self.prefixes.insert(prefix, iri);
                // Some dialects allow a '.' after prologue lines.
                if self.peek() == Some(&Token::Dot) {
                    self.bump();
                }
            } else if self.eat_keyword("BASE") {
                match self.bump() {
                    Some(Token::IriRef(_)) => {}
                    other => {
                        return Err(SparqlError::Parse(format!(
                            "expected IRI after BASE, found {other:?}"
                        )))
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn resolve_pname(&self, prefix: &str, local: &str) -> Result<Iri, SparqlError> {
        let ns = self.prefixes.get(prefix).ok_or_else(|| {
            SparqlError::Parse(format!("undeclared prefix: {prefix}:"))
        })?;
        Ok(Iri::new(format!("{ns}{local}")))
    }

    // ---- SELECT ----

    fn parse_select(&mut self) -> Result<SelectQuery, SparqlError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let _ = self.eat_keyword("REDUCED");
        let mut projection = Vec::new();
        if self.peek() == Some(&Token::Star) {
            self.bump();
        } else {
            loop {
                match self.peek() {
                    Some(Token::Var(_)) => {
                        if let Some(Token::Var(v)) = self.bump() {
                            projection.push(Projection::Var(v));
                        }
                    }
                    Some(Token::LParen) => {
                        self.bump();
                        let expr = self.parse_expression()?;
                        self.expect_keyword("AS")?;
                        let var = self.parse_var()?;
                        self.expect(Token::RParen)?;
                        projection.push(Projection::Expr(expr, var));
                    }
                    _ => break,
                }
            }
            if projection.is_empty() {
                return Err(SparqlError::Parse("empty SELECT projection".into()));
            }
        }
        self.expect_optional_keyword("WHERE");
        let pattern = self.parse_group_graph_pattern()?;

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            while let Some(Token::Var(_)) = self.peek() {
                if let Some(Token::Var(v)) = self.bump() {
                    group_by.push(v);
                }
            }
            if group_by.is_empty() {
                return Err(SparqlError::Parse("GROUP BY needs variables".into()));
            }
        }

        let mut having = Vec::new();
        if self.eat_keyword("HAVING") {
            loop {
                self.expect(Token::LParen)?;
                having.push(self.parse_expression()?);
                self.expect(Token::RParen)?;
                if self.peek() != Some(&Token::LParen) {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                if self.eat_keyword("DESC") {
                    self.expect(Token::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect(Token::RParen)?;
                    order_by.push(OrderKey { expr, descending: true });
                } else if self.eat_keyword("ASC") {
                    self.expect(Token::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect(Token::RParen)?;
                    order_by.push(OrderKey { expr, descending: false });
                } else if let Some(Token::Var(_)) = self.peek() {
                    let var = self.parse_var()?;
                    order_by.push(OrderKey { expr: Expression::Var(var), descending: false });
                } else {
                    break;
                }
            }
            if order_by.is_empty() {
                return Err(SparqlError::Parse("ORDER BY needs keys".into()));
            }
        }

        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_keyword("LIMIT") {
                limit = Some(self.parse_usize()?);
            } else if self.eat_keyword("OFFSET") {
                offset = Some(self.parse_usize()?);
            } else {
                break;
            }
        }

        Ok(SelectQuery { distinct, projection, pattern, group_by, having, order_by, limit, offset })
    }

    fn parse_trailing_limit(&mut self) -> Result<Option<usize>, SparqlError> {
        if self.eat_keyword("LIMIT") {
            Ok(Some(self.parse_usize()?))
        } else {
            Ok(None)
        }
    }

    fn parse_usize(&mut self) -> Result<usize, SparqlError> {
        match self.bump() {
            Some(Token::Integer(n)) if n >= 0 => Ok(n as usize),
            other => Err(SparqlError::Parse(format!(
                "expected non-negative integer, found {other:?}"
            ))),
        }
    }

    fn parse_var(&mut self) -> Result<Var, SparqlError> {
        match self.bump() {
            Some(Token::Var(v)) => Ok(v),
            other => Err(SparqlError::Parse(format!(
                "expected variable, found {other:?}"
            ))),
        }
    }

    // ---- Graph patterns ----

    fn parse_group_graph_pattern(&mut self) -> Result<GraphPattern, SparqlError> {
        self.expect(Token::LBrace)?;
        // Sub-select?
        if self.peek_keyword("SELECT") {
            let inner = self.parse_select()?;
            self.expect(Token::RBrace)?;
            return Ok(GraphPattern::SubSelect(Box::new(inner)));
        }
        let mut members: Vec<GraphPattern> = Vec::new();
        let mut filters: Vec<Expression> = Vec::new();
        let mut triples: Vec<TriplePattern> = Vec::new();

        macro_rules! flush_triples {
            () => {
                if !triples.is_empty() {
                    members.push(GraphPattern::Bgp(std::mem::take(&mut triples)));
                }
            };
        }

        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.bump();
                    break;
                }
                None => return Err(SparqlError::Parse("unterminated group pattern".into())),
                Some(Token::LBrace) => {
                    flush_triples!();
                    let mut left = self.parse_group_graph_pattern()?;
                    while self.eat_keyword("UNION") {
                        let right = self.parse_group_graph_pattern()?;
                        left = GraphPattern::Union(Box::new(left), Box::new(right));
                    }
                    members.push(left);
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("FILTER") => {
                    self.bump();
                    // FILTER(expr), FILTER builtin(...), FILTER [NOT] EXISTS {..}
                    let expr = if self.eat_keyword("EXISTS") {
                        let inner = self.parse_group_graph_pattern()?;
                        Expression::Exists(Box::new(inner), false)
                    } else if self.eat_keyword("NOT") {
                        self.expect_keyword("EXISTS")?;
                        let inner = self.parse_group_graph_pattern()?;
                        Expression::Exists(Box::new(inner), true)
                    } else if self.peek() == Some(&Token::LParen) {
                        self.bump();
                        let e = self.parse_expression()?;
                        self.expect(Token::RParen)?;
                        e
                    } else {
                        self.parse_primary_expression()?
                    };
                    filters.push(expr);
                    if self.peek() == Some(&Token::Dot) {
                        self.bump();
                    }
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("BIND") => {
                    flush_triples!();
                    self.bump();
                    self.expect(Token::LParen)?;
                    let expr = self.parse_expression()?;
                    self.expect_keyword("AS")?;
                    let var = self.parse_var()?;
                    self.expect(Token::RParen)?;
                    members.push(GraphPattern::Bind(expr, var));
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("MINUS") => {
                    flush_triples!();
                    self.bump();
                    let inner = self.parse_group_graph_pattern()?;
                    members.push(GraphPattern::Minus(Box::new(inner)));
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("GRAPH") => {
                    flush_triples!();
                    self.bump();
                    let graph = match self.peek() {
                        Some(Token::Var(_)) => VarOrTerm::Var(self.parse_var()?),
                        _ => VarOrTerm::Term(Term::Iri(self.parse_iri()?)),
                    };
                    let inner = self.parse_group_graph_pattern()?;
                    members.push(GraphPattern::Graph(graph, Box::new(inner)));
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.bump();
                    let right = self.parse_group_graph_pattern()?;
                    flush_triples!();
                    let left = if members.is_empty() {
                        GraphPattern::Bgp(Vec::new())
                    } else if members.len() == 1 {
                        members.pop().expect("one member")
                    } else {
                        GraphPattern::Group(std::mem::take(&mut members), Vec::new())
                    };
                    members.push(GraphPattern::Optional(Box::new(left), Box::new(right)));
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("VALUES") => {
                    flush_triples!();
                    self.bump();
                    members.push(self.parse_values()?);
                }
                Some(Token::Dot) => {
                    self.bump();
                }
                _ => {
                    self.parse_triples_same_subject(&mut triples)?;
                    if self.peek() == Some(&Token::Dot) {
                        self.bump();
                    }
                }
            }
        }
        flush_triples!();

        if members.len() == 1 && filters.is_empty() {
            Ok(members.pop().expect("one member"))
        } else if members.len() == 1 {
            Ok(GraphPattern::Group(members, filters))
        } else {
            Ok(GraphPattern::Group(members, filters))
        }
    }

    fn parse_values(&mut self) -> Result<GraphPattern, SparqlError> {
        let mut vars = Vec::new();
        let mut rows = Vec::new();
        if self.peek() == Some(&Token::LParen) {
            self.bump();
            while let Some(Token::Var(_)) = self.peek() {
                vars.push(self.parse_var()?);
            }
            self.expect(Token::RParen)?;
            self.expect(Token::LBrace)?;
            while self.peek() == Some(&Token::LParen) {
                self.bump();
                let mut row = Vec::new();
                for _ in 0..vars.len() {
                    if self.peek_keyword("UNDEF") {
                        self.bump();
                        row.push(None);
                    } else {
                        row.push(Some(self.parse_term()?));
                    }
                }
                self.expect(Token::RParen)?;
                rows.push(row);
            }
            self.expect(Token::RBrace)?;
        } else {
            let var = self.parse_var()?;
            vars.push(var);
            self.expect(Token::LBrace)?;
            while self.peek() != Some(&Token::RBrace) {
                if self.peek_keyword("UNDEF") {
                    self.bump();
                    rows.push(vec![None]);
                } else {
                    rows.push(vec![Some(self.parse_term()?)]);
                }
            }
            self.expect(Token::RBrace)?;
        }
        Ok(GraphPattern::Values(vars, rows))
    }

    fn parse_triples_same_subject(
        &mut self,
        out: &mut Vec<TriplePattern>,
    ) -> Result<(), SparqlError> {
        let subject = self.parse_var_or_term()?;
        loop {
            let predicate = self.parse_verb()?;
            loop {
                let object = self.parse_var_or_term()?;
                out.push(TriplePattern {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                if self.peek() == Some(&Token::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            if self.peek() == Some(&Token::Semicolon) {
                self.bump();
                // allow trailing ';' before '.' or '}'
                if matches!(self.peek(), Some(Token::Dot) | Some(Token::RBrace) | None) {
                    break;
                }
            } else {
                break;
            }
        }
        Ok(())
    }

    fn parse_verb(&mut self) -> Result<PredicatePattern, SparqlError> {
        match self.peek() {
            Some(Token::Var(_)) => Ok(PredicatePattern::Var(self.parse_var()?)),
            Some(Token::Word(w)) if w == "a" => {
                self.bump();
                Ok(PredicatePattern::Path(PropertyPath::Iri(Iri::new(rdf::TYPE))))
            }
            _ => Ok(PredicatePattern::Path(self.parse_path()?)),
        }
    }

    // ---- Property paths ----

    fn parse_path(&mut self) -> Result<PropertyPath, SparqlError> {
        self.parse_path_alternative()
    }

    fn parse_path_alternative(&mut self) -> Result<PropertyPath, SparqlError> {
        let mut left = self.parse_path_sequence()?;
        while self.peek() == Some(&Token::Pipe) {
            self.bump();
            let right = self.parse_path_sequence()?;
            left = PropertyPath::Alternative(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_path_sequence(&mut self) -> Result<PropertyPath, SparqlError> {
        let mut left = self.parse_path_elt_or_inverse()?;
        while self.peek() == Some(&Token::Slash) {
            self.bump();
            let right = self.parse_path_elt_or_inverse()?;
            left = PropertyPath::Sequence(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_path_elt_or_inverse(&mut self) -> Result<PropertyPath, SparqlError> {
        if self.peek() == Some(&Token::Caret) {
            self.bump();
            let inner = self.parse_path_elt()?;
            Ok(PropertyPath::Inverse(Box::new(inner)))
        } else {
            self.parse_path_elt()
        }
    }

    fn parse_path_elt(&mut self) -> Result<PropertyPath, SparqlError> {
        let primary = match self.peek() {
            Some(Token::LParen) => {
                self.bump();
                let inner = self.parse_path()?;
                self.expect(Token::RParen)?;
                inner
            }
            _ => PropertyPath::Iri(self.parse_iri()?),
        };
        match self.peek() {
            Some(Token::Star) => {
                self.bump();
                Ok(PropertyPath::ZeroOrMore(Box::new(primary)))
            }
            Some(Token::Plus) => {
                self.bump();
                Ok(PropertyPath::OneOrMore(Box::new(primary)))
            }
            Some(Token::QuestionMark) => {
                self.bump();
                Ok(PropertyPath::ZeroOrOne(Box::new(primary)))
            }
            _ => Ok(primary),
        }
    }

    // ---- Terms ----

    fn parse_iri(&mut self) -> Result<Iri, SparqlError> {
        match self.bump() {
            Some(Token::IriRef(iri)) => Ok(Iri::new(iri)),
            Some(Token::PName(p, l)) => self.resolve_pname(&p, &l),
            other => Err(SparqlError::Parse(format!("expected IRI, found {other:?}"))),
        }
    }

    fn parse_var_or_term(&mut self) -> Result<VarOrTerm, SparqlError> {
        match self.peek() {
            Some(Token::Var(_)) => Ok(VarOrTerm::Var(self.parse_var()?)),
            _ => Ok(VarOrTerm::Term(self.parse_term()?)),
        }
    }

    fn parse_term(&mut self) -> Result<Term, SparqlError> {
        match self.bump() {
            Some(Token::IriRef(iri)) => Ok(Term::iri(iri)),
            Some(Token::PName(p, l)) => Ok(Term::Iri(self.resolve_pname(&p, &l)?)),
            Some(Token::BlankLabel(label)) => Ok(Term::blank(label)),
            Some(Token::Integer(n)) => {
                Ok(Term::Literal(Literal::typed(n.to_string(), Iri::new(xsd::INTEGER))))
            }
            Some(Token::Double(d)) => {
                Ok(Term::Literal(Literal::typed(d.to_string(), Iri::new(xsd::DOUBLE))))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("true") => {
                Ok(Term::Literal(Literal::boolean(true)))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("false") => {
                Ok(Term::Literal(Literal::boolean(false)))
            }
            Some(Token::String(s)) => match self.peek() {
                Some(Token::LangTag(_)) => {
                    if let Some(Token::LangTag(tag)) = self.bump() {
                        Ok(Term::Literal(Literal::lang_string(s, tag)))
                    } else {
                        unreachable!("peeked LangTag")
                    }
                }
                Some(Token::CaretCaret) => {
                    self.bump();
                    let dt = self.parse_iri()?;
                    Ok(Term::Literal(Literal::typed(s, dt)))
                }
                _ => Ok(Term::Literal(Literal::string(s))),
            },
            other => Err(SparqlError::Parse(format!("expected term, found {other:?}"))),
        }
    }

    // ---- Expressions ----

    fn parse_expression(&mut self) -> Result<Expression, SparqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_and()?;
        while self.peek() == Some(&Token::OrOr) {
            self.bump();
            let right = self.parse_and()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_relational()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.bump();
            let right = self.parse_relational()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<Expression, SparqlError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(CompareOp::Eq),
            Some(Token::Ne) => Some(CompareOp::Ne),
            Some(Token::Lt) => Some(CompareOp::Lt),
            Some(Token::Le) => Some(CompareOp::Le),
            Some(Token::Gt) => Some(CompareOp::Gt),
            Some(Token::Ge) => Some(CompareOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            Ok(Expression::Compare(op, Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_additive(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expression::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expression::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expression, SparqlError> {
        match self.peek() {
            Some(Token::Bang) => {
                self.bump();
                Ok(Expression::Not(Box::new(self.parse_unary()?)))
            }
            Some(Token::Minus) => {
                self.bump();
                Ok(Expression::Neg(Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary_expression(),
        }
    }

    fn parse_primary_expression(&mut self) -> Result<Expression, SparqlError> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.bump();
                let e = self.parse_expression()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Var(_)) => Ok(Expression::Var(self.parse_var()?)),
            Some(Token::Word(w)) => {
                if w.eq_ignore_ascii_case("EXISTS") {
                    self.bump();
                    let inner = self.parse_group_graph_pattern()?;
                    return Ok(Expression::Exists(Box::new(inner), false));
                }
                if w.eq_ignore_ascii_case("NOT") {
                    self.bump();
                    self.expect_keyword("EXISTS")?;
                    let inner = self.parse_group_graph_pattern()?;
                    return Ok(Expression::Exists(Box::new(inner), true));
                }
                if let Some(func) = builtin_function(&w) {
                    self.bump();
                    let args = self.parse_arg_list()?;
                    check_arity(func, args.len())?;
                    Ok(Expression::Call(func, args))
                } else if let Some(agg) = self.try_parse_aggregate(&w)? {
                    Ok(Expression::Aggregate(Box::new(agg)))
                } else if w.eq_ignore_ascii_case("true") || w.eq_ignore_ascii_case("false") {
                    self.bump();
                    Ok(Expression::Constant(Term::Literal(Literal::boolean(
                        w.eq_ignore_ascii_case("true"),
                    ))))
                } else {
                    Err(SparqlError::Parse(format!("unknown function or keyword: {w}")))
                }
            }
            Some(
                Token::IriRef(_)
                | Token::PName(_, _)
                | Token::String(_)
                | Token::Integer(_)
                | Token::Double(_),
            ) => Ok(Expression::Constant(self.parse_term()?)),
            other => Err(SparqlError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn try_parse_aggregate(&mut self, word: &str) -> Result<Option<Aggregate>, SparqlError> {
        let kind = word.to_ascii_uppercase();
        let agg = match kind.as_str() {
            "COUNT" => {
                self.bump();
                self.expect(Token::LParen)?;
                if self.peek() == Some(&Token::Star) {
                    self.bump();
                    self.expect(Token::RParen)?;
                    Aggregate::CountAll
                } else {
                    let distinct = self.eat_keyword("DISTINCT");
                    let expr = self.parse_expression()?;
                    self.expect(Token::RParen)?;
                    Aggregate::Count { distinct, expr }
                }
            }
            "SUM" | "AVG" | "MIN" | "MAX" => {
                self.bump();
                self.expect(Token::LParen)?;
                let _ = self.eat_keyword("DISTINCT");
                let expr = self.parse_expression()?;
                self.expect(Token::RParen)?;
                match kind.as_str() {
                    "SUM" => Aggregate::Sum(expr),
                    "AVG" => Aggregate::Avg(expr),
                    "MIN" => Aggregate::Min(expr),
                    _ => Aggregate::Max(expr),
                }
            }
            _ => return Ok(None),
        };
        Ok(Some(agg))
    }

    fn parse_arg_list(&mut self) -> Result<Vec<Expression>, SparqlError> {
        self.expect(Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.parse_expression()?);
                if self.peek() == Some(&Token::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Token::RParen)?;
        Ok(args)
    }

    // ---- Update ----

    fn parse_update_op(&mut self) -> Result<Update, SparqlError> {
        if self.eat_keyword("INSERT") {
            if self.eat_keyword("DATA") {
                return Ok(Update::InsertData(self.parse_quad_data()?));
            }
            // INSERT { tmpl } WHERE { pattern }
            let insert = self.parse_quad_data()?;
            self.expect_keyword("WHERE")?;
            let pattern = self.parse_group_graph_pattern()?;
            return Ok(Update::Modify { delete: Vec::new(), insert, pattern });
        }
        if self.eat_keyword("DELETE") {
            if self.eat_keyword("DATA") {
                return Ok(Update::DeleteData(self.parse_quad_data()?));
            }
            if self.eat_keyword("WHERE") {
                return Ok(Update::DeleteWhere(self.parse_quad_data()?));
            }
            let delete = self.parse_quad_data()?;
            let insert = if self.eat_keyword("INSERT") {
                self.parse_quad_data()?
            } else {
                Vec::new()
            };
            self.expect_keyword("WHERE")?;
            let pattern = self.parse_group_graph_pattern()?;
            return Ok(Update::Modify { delete, insert, pattern });
        }
        Err(SparqlError::Parse(
            "expected INSERT or DELETE update operation".into(),
        ))
    }

    fn parse_quad_data(&mut self) -> Result<Vec<QuadTemplate>, SparqlError> {
        self.expect(Token::LBrace)?;
        let mut quads = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.bump();
                    break;
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("GRAPH") => {
                    self.bump();
                    let graph = match self.peek() {
                        Some(Token::Var(_)) => VarOrTerm::Var(self.parse_var()?),
                        _ => VarOrTerm::Term(Term::Iri(self.parse_iri()?)),
                    };
                    self.expect(Token::LBrace)?;
                    while self.peek() != Some(&Token::RBrace) {
                        if self.peek() == Some(&Token::Dot) {
                            self.bump();
                            continue;
                        }
                        self.parse_template_triples(Some(graph.clone()), &mut quads)?;
                    }
                    self.expect(Token::RBrace)?;
                }
                Some(Token::Dot) => {
                    self.bump();
                }
                None => return Err(SparqlError::Parse("unterminated quad data".into())),
                _ => {
                    self.parse_template_triples(None, &mut quads)?;
                }
            }
        }
        Ok(quads)
    }

    fn parse_template_triples(
        &mut self,
        graph: Option<VarOrTerm>,
        out: &mut Vec<QuadTemplate>,
    ) -> Result<(), SparqlError> {
        let mut triples = Vec::new();
        self.parse_triples_same_subject(&mut triples)?;
        if self.peek() == Some(&Token::Dot) {
            self.bump();
        }
        for t in triples {
            let predicate = match t.predicate {
                PredicatePattern::Var(v) => VarOrTerm::Var(v),
                PredicatePattern::Path(PropertyPath::Iri(iri)) => {
                    VarOrTerm::Term(Term::Iri(iri))
                }
                PredicatePattern::Path(_) => {
                    return Err(SparqlError::Parse(
                        "property paths are not allowed in update templates".into(),
                    ))
                }
            };
            out.push(QuadTemplate {
                subject: t.subject,
                predicate,
                object: t.object,
                graph: graph.clone(),
            });
        }
        Ok(())
    }
}

fn builtin_function(word: &str) -> Option<Function> {
    Some(match word.to_ascii_uppercase().as_str() {
        "ISLITERAL" => Function::IsLiteral,
        "ISIRI" | "ISURI" => Function::IsIri,
        "ISBLANK" => Function::IsBlank,
        "BOUND" => Function::Bound,
        "STR" => Function::Str,
        "LANG" => Function::Lang,
        "DATATYPE" => Function::Datatype,
        "CONCAT" => Function::Concat,
        "STRSTARTS" => Function::StrStarts,
        "STRENDS" => Function::StrEnds,
        "CONTAINS" => Function::Contains,
        "STRLEN" => Function::StrLen,
        "UCASE" => Function::Ucase,
        "LCASE" => Function::Lcase,
        "ABS" => Function::Abs,
        "REGEX" => Function::Regex,
        _ => return None,
    })
}

fn check_arity(func: Function, n: usize) -> Result<(), SparqlError> {
    let ok = match func {
        Function::IsLiteral
        | Function::IsIri
        | Function::IsBlank
        | Function::Bound
        | Function::Str
        | Function::Lang
        | Function::Datatype
        | Function::StrLen
        | Function::Ucase
        | Function::Lcase
        | Function::Abs => n == 1,
        Function::StrStarts | Function::StrEnds | Function::Contains | Function::Regex => n == 2,
        Function::Concat => n >= 1,
    };
    if ok {
        Ok(())
    } else {
        Err(SparqlError::Parse(format!("wrong arity {n} for {func:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(text: &str) -> SelectQuery {
        match parse_query(text).unwrap() {
            Query::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_eq1() {
        let q = select(
            "PREFIX k: <http://pg/k/> SELECT ?n WHERE { ?n k:hasTag \"#webseries\" }",
        );
        assert_eq!(q.projection.len(), 1);
        match &q.pattern {
            GraphPattern::Bgp(tps) => {
                assert_eq!(tps.len(), 1);
                assert_eq!(
                    tps[0].predicate,
                    PredicatePattern::Path(PropertyPath::Iri(Iri::new("http://pg/k/hasTag")))
                );
            }
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn parses_semicolon_predicate_lists() {
        let q = select(
            "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\
             PREFIX rel: <http://pg/r/>\
             SELECT ?x WHERE { ?e rdf:subject ?x; rdf:predicate rel:follows; rdf:object ?y . ?e ?k ?V }",
        );
        match &q.pattern {
            GraphPattern::Bgp(tps) => assert_eq!(tps.len(), 4),
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn parses_graph_pattern() {
        let q = select(
            "PREFIX r: <http://pg/r/> PREFIX k: <http://pg/k/>\
             SELECT ?n2 WHERE { GRAPH ?g1 { ?n r:follows ?n2 . ?g1 k:hasTag \"#webseries\" } }",
        );
        match &q.pattern {
            GraphPattern::Graph(VarOrTerm::Var(g), inner) => {
                assert_eq!(g, "g1");
                assert!(matches!(**inner, GraphPattern::Bgp(_)));
            }
            other => panic!("expected GRAPH, got {other:?}"),
        }
    }

    #[test]
    fn parses_filter_isliteral() {
        let q = select(
            "SELECT ?v WHERE { ?x ?k ?v FILTER (isLiteral(?v)) }",
        );
        match &q.pattern {
            GraphPattern::Group(members, filters) => {
                assert_eq!(members.len(), 1);
                assert_eq!(
                    filters[0],
                    Expression::Call(Function::IsLiteral, vec![Expression::Var("v".into())])
                );
            }
            other => panic!("expected group with filter, got {other:?}"),
        }
    }

    #[test]
    fn parses_property_path_sequence_and_alt() {
        let q = select(
            "PREFIX r: <http://pg/r/> SELECT (COUNT(?y) as ?cnt) WHERE { <http://pg/n1> r:follows/r:follows ?y }",
        );
        match &q.pattern {
            GraphPattern::Bgp(tps) => match &tps[0].predicate {
                PredicatePattern::Path(PropertyPath::Sequence(_, _)) => {}
                other => panic!("expected sequence path, got {other:?}"),
            },
            other => panic!("expected BGP, got {other:?}"),
        }
        let q2 = select(
            "PREFIX r: <http://pg/r/> SELECT ?n2 WHERE { ?n1 (r:knows|r:follows) ?n2 }",
        );
        match &q2.pattern {
            GraphPattern::Bgp(tps) => match &tps[0].predicate {
                PredicatePattern::Path(PropertyPath::Alternative(_, _)) => {}
                other => panic!("expected alternative path, got {other:?}"),
            },
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn parses_subselect_with_group_by_and_order() {
        let q = select(
            "PREFIX r: <http://pg/r/>\
             SELECT ?inDeg (COUNT(*) as ?cnt) WHERE {\
               SELECT ?n2 (COUNT(*) as ?inDeg) WHERE { ?n1 (r:knows|r:follows) ?n2 } GROUP BY ?n2\
             } GROUP BY ?inDeg ORDER BY DESC(?inDeg)",
        );
        assert_eq!(q.group_by, vec!["inDeg".to_string()]);
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].descending);
        assert!(matches!(q.pattern, GraphPattern::SubSelect(_)));
    }

    #[test]
    fn parses_count_star_projection() {
        let q = select("SELECT (COUNT(*) AS ?cnt) WHERE { ?x ?p ?y }");
        match &q.projection[0] {
            Projection::Expr(Expression::Aggregate(agg), v) => {
                assert_eq!(**agg, Aggregate::CountAll);
                assert_eq!(v, "cnt");
            }
            other => panic!("expected aggregate projection, got {other:?}"),
        }
    }

    #[test]
    fn parses_str_concat_filter() {
        let q = select(
            "PREFIX k: <http://pg/k/>\
             SELECT ?n WHERE { ?n k:hasTag ?y FILTER(STR(?y)=CONCAT(\"#\",STR(?label))) }",
        );
        match &q.pattern {
            GraphPattern::Group(_, filters) => {
                assert!(matches!(filters[0], Expression::Compare(CompareOp::Eq, _, _)));
            }
            other => panic!("expected group, got {other:?}"),
        }
    }

    #[test]
    fn parses_union() {
        let q = select("SELECT ?x WHERE { { ?x <http://a> ?y } UNION { ?x <http://b> ?y } }");
        assert!(matches!(q.pattern, GraphPattern::Union(_, _)));
    }

    #[test]
    fn parses_optional() {
        let q = select(
            "SELECT ?x ?n WHERE { ?x <http://a> ?y OPTIONAL { ?x <http://name> ?n } }",
        );
        fn has_optional(p: &GraphPattern) -> bool {
            match p {
                GraphPattern::Optional(_, _) => true,
                GraphPattern::Group(ms, _) => ms.iter().any(has_optional),
                _ => false,
            }
        }
        assert!(has_optional(&q.pattern));
    }

    #[test]
    fn parses_values() {
        let q = select(
            "SELECT ?x WHERE { VALUES ?x { <http://a> <http://b> } ?x ?p ?o }",
        );
        fn has_values(p: &GraphPattern) -> bool {
            match p {
                GraphPattern::Values(_, rows) => rows.len() == 2,
                GraphPattern::Group(ms, _) => ms.iter().any(has_values),
                _ => false,
            }
        }
        assert!(has_values(&q.pattern));
    }

    #[test]
    fn parses_ask() {
        let q = parse_query("ASK { ?x ?p ?o }").unwrap();
        assert!(matches!(q, Query::Ask(_)));
    }

    #[test]
    fn parses_limit_offset_distinct() {
        let q = select("SELECT DISTINCT ?x WHERE { ?x ?p ?o } LIMIT 10 OFFSET 5");
        assert!(q.distinct);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        let err = parse_query("SELECT ?x WHERE { ?x k:hasTag \"x\" }").unwrap_err();
        assert!(err.to_string().contains("undeclared prefix"));
    }

    #[test]
    fn parses_insert_data() {
        let up = parse_update(
            "INSERT DATA { <http://s> <http://p> \"v\" . GRAPH <http://g> { <http://s> <http://p> 23 } }",
        )
        .unwrap();
        match up {
            Update::InsertData(quads) => {
                assert_eq!(quads.len(), 2);
                assert!(quads[0].graph.is_none());
                assert!(quads[1].graph.is_some());
            }
            other => panic!("expected INSERT DATA, got {other:?}"),
        }
    }

    #[test]
    fn parses_delete_insert_where() {
        let up = parse_update(
            "DELETE { ?s <http://p> ?o } INSERT { ?s <http://p2> ?o } WHERE { ?s <http://p> ?o }",
        )
        .unwrap();
        match up {
            Update::Modify { delete, insert, .. } => {
                assert_eq!(delete.len(), 1);
                assert_eq!(insert.len(), 1);
            }
            other => panic!("expected Modify, got {other:?}"),
        }
    }

    #[test]
    fn parses_delete_where() {
        let up = parse_update("DELETE WHERE { ?s <http://p> ?o }").unwrap();
        assert!(matches!(up, Update::DeleteWhere(q) if q.len() == 1));
    }

    #[test]
    fn parses_a_keyword_as_rdf_type() {
        let q = select("SELECT ?x WHERE { ?x a <http://Class> }");
        match &q.pattern {
            GraphPattern::Bgp(tps) => assert_eq!(
                tps[0].predicate,
                PredicatePattern::Path(PropertyPath::Iri(Iri::new(rdf::TYPE)))
            ),
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn parses_object_lists() {
        let q = select("SELECT ?x WHERE { ?x <http://p> <http://a>, <http://b> }");
        match &q.pattern {
            GraphPattern::Bgp(tps) => assert_eq!(tps.len(), 2),
            other => panic!("expected BGP, got {other:?}"),
        }
    }

    #[test]
    fn parses_one_or_more_path() {
        let q = select("PREFIX r: <http://pg/r/> SELECT ?y WHERE { <http://pg/v1> r:follows+ ?y }");
        match &q.pattern {
            GraphPattern::Bgp(tps) => {
                assert!(matches!(
                    tps[0].predicate,
                    PredicatePattern::Path(PropertyPath::OneOrMore(_))
                ));
            }
            other => panic!("expected BGP, got {other:?}"),
        }
    }
}
