//! Query compilation and planning.
//!
//! Compilation is a layered optimizer pipeline:
//!
//! 1. **Lowering** maps AST variables to binding slots, resolves constant
//!    terms to dictionary IDs, and rewrites property-path
//!    sequences/alternatives into joins/unions (the standard SPARQL
//!    algebra translation), producing the logical algebra of
//!    [`crate::logical`].
//! 2. **Rewriting** ([`crate::rewrite`]) pushes filter pins into scans,
//!    folds constants, and eliminates provably empty subtrees.
//! 3. **Physical planning** ([`crate::cost`]) orders each basic graph
//!    pattern — statistics-driven dynamic programming by default, the
//!    greedy heuristic as fallback — with a per-step choice between index
//!    nested-loop join and hash join, the two physical strategies whose
//!    interplay the paper's experiments 4 and 5 highlight.

use std::collections::{HashMap, HashSet};

use quadstore::{AccessPath, DatasetView, GraphConstraint, QuadPattern};
use rdf_model::{Term, TermId};

use crate::ast::{
    Aggregate, Expression, GraphPattern, PredicatePattern, Projection, PropertyPath, Query,
    SelectQuery, VarOrTerm,
};
use crate::cost::{BgpPlanner, Estimator};
use crate::error::SparqlError;
use crate::expr::{CExpr, TermKind, Value};
use crate::logical::{lnode_vars, LForm, LNode, LQuery, LSelect, Pin};

/// Maps variable names to binding slots.
#[derive(Debug, Default, Clone)]
pub struct VarTable {
    names: Vec<String>,
    slots: HashMap<String, usize>,
}

impl VarTable {
    /// Interns a variable name.
    pub fn slot(&mut self, name: &str) -> usize {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.names.len();
        self.names.push(name.to_string());
        self.slots.insert(name.to_string(), s);
        s
    }

    /// A fresh, non-user-visible slot (path rewriting intermediates).
    pub fn fresh(&mut self) -> usize {
        let name = format!(" _path{}", self.names.len());
        self.slot(&name)
    }

    /// Slot of an existing variable.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.slots.get(name).copied()
    }

    /// Name of a slot.
    pub fn name(&self, slot: usize) -> &str {
        &self.names[slot]
    }

    /// Total number of slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variables have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A variable slot or a constant term with its (optional) dictionary ID.
#[derive(Debug, Clone, PartialEq)]
pub enum CPos {
    /// Variable slot.
    Var(usize),
    /// Constant; `None` ID means the term does not occur in the store.
    Const(Term, Option<TermId>),
}

impl CPos {
    /// The slot, if a variable.
    pub fn slot(&self) -> Option<usize> {
        match self {
            CPos::Var(s) => Some(*s),
            CPos::Const(_, _) => None,
        }
    }
}

/// Graph context of a compiled triple.
#[derive(Debug, Clone, PartialEq)]
pub enum CGraph {
    /// Union-default-graph semantics (Oracle SEM_MATCH style): a pattern
    /// outside any `GRAPH` clause matches quads in *any* graph. This is
    /// what the paper's queries assume — the NG model's `e-s-p-o` quads
    /// must be visible to bare patterns like `?x rel:follows ?y`.
    Any,
    /// The default (unnamed) graph only — strict SPARQL semantics.
    Default,
    /// `GRAPH ?g` — the slot joins/binds like any variable.
    Var(usize),
    /// `GRAPH <iri>`.
    Const(Term, Option<TermId>),
}

/// A compiled triple pattern (predicate is a slot or a plain IRI).
#[derive(Debug, Clone, PartialEq)]
pub struct CTriple {
    /// Subject.
    pub s: CPos,
    /// Predicate (var or IRI constant).
    pub p: CPos,
    /// Object.
    pub o: CPos,
    /// Graph context.
    pub g: CGraph,
}

impl CTriple {
    /// Variable slots mentioned by this triple (including the graph var).
    pub fn var_slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for pos in [&self.s, &self.p, &self.o] {
            if let CPos::Var(s) = pos {
                out.push(*s);
            }
        }
        if let CGraph::Var(s) = self.g {
            out.push(s);
        }
        out
    }

    /// The constants-only scan pattern (bound variables are not applied).
    pub fn const_pattern(&self) -> QuadPattern {
        let id = |p: &CPos| match p {
            CPos::Const(_, id) => *id,
            CPos::Var(_) => None,
        };
        QuadPattern {
            s: id(&self.s),
            p: id(&self.p),
            o: id(&self.o),
            g: match &self.g {
                CGraph::Any => GraphConstraint::Any,
                CGraph::Default => GraphConstraint::DefaultOnly,
                CGraph::Var(_) => GraphConstraint::AnyNamed,
                CGraph::Const(_, Some(id)) => GraphConstraint::Named(*id),
                CGraph::Const(_, None) => GraphConstraint::Named(TermId(u64::MAX)),
            },
        }
    }

    /// True if some constant in the triple is absent from the dictionary,
    /// making the pattern unsatisfiable.
    pub fn unsatisfiable(&self) -> bool {
        let missing = |p: &CPos| matches!(p, CPos::Const(_, None));
        missing(&self.s)
            || missing(&self.p)
            || missing(&self.o)
            || matches!(&self.g, CGraph::Const(_, None))
    }
}

/// Physical join strategy of one BGP step.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Index nested-loop join: probe the chosen index once per incoming
    /// binding.
    IndexNlj,
    /// Hash join: scan the pattern once (typically a full index scan),
    /// build a hash table on the join slots, probe with incoming bindings.
    HashJoin {
        /// Slots shared with the already-planned part of the query.
        join_slots: Vec<usize>,
    },
}

/// One planned step of a basic graph pattern.
#[derive(Debug, Clone)]
pub struct Step {
    /// The triple pattern.
    pub triple: CTriple,
    /// Join strategy.
    pub strategy: Strategy,
    /// Estimated matches of the constants-only scan.
    pub est_scan: usize,
    /// Estimated rows flowing *out* of this step (the optimizer's
    /// cardinality after the join), for EXPLAIN's estimated-vs-actual
    /// comparison.
    pub est_out: u64,
    /// The access path the (first member of the) dataset would use.
    pub access: Option<AccessPath>,
}

/// A compiled closure path (only `*`, `+`, `?` survive compilation; other
/// operators were rewritten into joins/unions).
#[derive(Debug, Clone, PartialEq)]
pub enum CPath {
    /// A single predicate step.
    Iri(Term, Option<TermId>),
    /// Inverse step.
    Inverse(Box<CPath>),
    /// Sequence inside a closure.
    Sequence(Box<CPath>, Box<CPath>),
    /// Alternation inside a closure.
    Alternative(Box<CPath>, Box<CPath>),
    /// Zero or more.
    ZeroOrMore(Box<CPath>),
    /// One or more.
    OneOrMore(Box<CPath>),
    /// Zero or one.
    ZeroOrOne(Box<CPath>),
}

/// A closure-path step (`p*`, `p+`, `p?` and nested combinations).
#[derive(Debug, Clone)]
pub struct PathStep {
    /// Subject end.
    pub s: CPos,
    /// Object end.
    pub o: CPos,
    /// The compiled path.
    pub path: CPath,
    /// Graph context (closure paths do not bind graph variables).
    pub graph: GraphConstraint,
}

/// A compiled pattern-tree node.
#[derive(Debug, Clone)]
pub enum Node {
    /// A planned BGP fragment: ordered steps.
    Steps(Vec<Step>),
    /// A closure-path step.
    Path(PathStep),
    /// Sequential join of children (each child consumes the previous
    /// child's bindings).
    Join(Vec<Node>),
    /// Filters applied over the child's solutions.
    Filter(Vec<CExpr>, Box<Node>),
    /// Union of two branches.
    Union(Box<Node>, Box<Node>),
    /// Left outer join.
    Optional(Box<Node>, Box<Node>),
    /// A materialised sub-select.
    SubSelect(Box<CSelect>),
    /// Inline VALUES rows.
    Values {
        /// Target slots.
        slots: Vec<usize>,
        /// Rows; `None` = UNDEF.
        rows: Vec<Vec<Option<Term>>>,
    },
    /// `BIND(expr AS ?v)`: extend each row with a computed value.
    Extend(usize, CExpr),
    /// `MINUS { ... }`: drop rows compatible with the inner solutions.
    Minus(Box<Node>),
}

/// One projected column: output slot plus an optional computed expression.
#[derive(Debug, Clone)]
pub struct CProj {
    /// Output slot.
    pub slot: usize,
    /// Expression, if this is a `(expr AS ?v)` column.
    pub expr: Option<CExpr>,
}

/// A compiled aggregate.
#[derive(Debug, Clone)]
pub enum CAggregate {
    /// `COUNT(*)`.
    CountAll,
    /// `COUNT([DISTINCT] expr)`.
    Count {
        /// DISTINCT flag.
        distinct: bool,
        /// Counted expression.
        expr: CExpr,
    },
    /// `SUM(expr)`.
    Sum(CExpr),
    /// `AVG(expr)`.
    Avg(CExpr),
    /// `MIN(expr)`.
    Min(CExpr),
    /// `MAX(expr)`.
    Max(CExpr),
}

/// A compiled SELECT (top-level or nested).
#[derive(Debug, Clone)]
pub struct CSelect {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Projected columns in order.
    pub projection: Vec<CProj>,
    /// Aggregates referenced by projection expressions.
    pub aggregates: Vec<CAggregate>,
    /// GROUP BY slots.
    pub group_slots: Vec<usize>,
    /// HAVING conditions (evaluated with aggregate values in scope).
    pub having: Vec<CExpr>,
    /// WHERE tree.
    pub root: Node,
    /// ORDER BY keys (expr, descending).
    pub order_by: Vec<(CExpr, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: Option<usize>,
}

impl CSelect {
    /// Output slots in projection order.
    pub fn projected_slots(&self) -> Vec<usize> {
        self.projection.iter().map(|p| p.slot).collect()
    }

    /// True when the query aggregates (explicit GROUP BY or aggregate
    /// projections).
    pub fn is_grouped(&self) -> bool {
        !self.group_slots.is_empty() || !self.aggregates.is_empty()
    }
}

/// A fully compiled query.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The variable table (shared across nesting levels).
    pub vars: VarTable,
    /// Compiled `EXISTS { ... }` patterns, referenced by
    /// [`CExpr::ExistsRef`] indexes.
    pub exists: Vec<Node>,
    /// The compiled form.
    pub form: CForm,
    /// Rendered logical plan (post-rewrite), with the applied rewrite
    /// rules — the `EXPLAIN LOGICAL` text.
    pub logical: String,
}

impl CompiledQuery {
    /// The optimizer's estimated result cardinality of the root pattern
    /// (the estimated output of the last planned step; 0 when the plan
    /// has no scan steps to estimate).
    pub fn estimated_rows(&self) -> u64 {
        fn last_est(node: &Node) -> Option<u64> {
            match node {
                Node::Steps(steps) => steps.last().map(|s| s.est_out),
                Node::Filter(_, inner) => last_est(inner),
                Node::Join(children) => children.iter().rev().find_map(last_est),
                Node::Union(a, b) => {
                    Some(last_est(a).unwrap_or(0).saturating_add(last_est(b).unwrap_or(0)))
                }
                Node::Optional(a, _) => last_est(a),
                Node::SubSelect(sel) => last_est(&sel.root),
                Node::Values { rows, .. } => Some(rows.len() as u64),
                _ => None,
            }
        }
        let root = match &self.form {
            CForm::Select(sel) | CForm::Construct(_, sel) => &sel.root,
            CForm::Ask(node) => return last_est(node).unwrap_or(0).min(1),
        };
        last_est(root).unwrap_or(0)
    }
}

/// Compiled query forms.
#[derive(Debug, Clone)]
pub enum CForm {
    /// `SELECT`.
    Select(CSelect),
    /// `ASK`.
    Ask(Node),
    /// `CONSTRUCT`: instantiate the templates per solution of the select.
    Construct(Vec<crate::ast::QuadTemplate>, CSelect),
}

/// Forces one physical join strategy for every joined BGP step —
/// the optimizer-ablation hook (the paper's experiments hinge on the
/// optimizer's NLJ-vs-hash choices; forcing lets benches measure both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForcedJoin {
    /// Always probe indexes per binding.
    Nlj,
    /// Always build hash tables from full scans.
    Hash,
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompileOptions {
    /// Union-default-graph semantics (Oracle SEM_MATCH style). On by
    /// default; SPARQL Update compiles strict so `GRAPH` targeting works
    /// per the W3C spec.
    pub union_default_graph: bool,
    /// Optional join-strategy override (ablations only).
    pub force_join: Option<ForcedJoin>,
    /// Whether executions of this plan may use the vectorized columnar
    /// pipeline. Part of the plan-cache key: a plan prepared for
    /// vectorized execution must never be served to a `vectorize(false)`
    /// request (the reference row pipeline is the correctness oracle and
    /// must not silently inherit vectorized state, and vice versa).
    pub vectorize: bool,
    /// Whether the cost-based optimizer plans join orders (statistics +
    /// dynamic programming). Off = the greedy heuristic planner, exactly
    /// as before CBO existed (`pgq --no-cbo`). Part of the plan-cache key.
    pub use_cbo: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            union_default_graph: true,
            force_join: None,
            vectorize: true,
            use_cbo: true,
        }
    }
}

/// Compiles a parsed query against a dataset (planning uses the dataset's
/// statistics, so compilation is per-dataset, like a database prepare).
/// Uses union-default-graph semantics; see [`compile_with`].
pub fn compile(view: &DatasetView, query: &Query) -> Result<CompiledQuery, SparqlError> {
    compile_with(view, query, CompileOptions::default())
}

/// [`compile`] with explicit options: lower to the logical algebra, run
/// the rewrite rules, then plan physically.
pub fn compile_with(
    view: &DatasetView,
    query: &Query,
    options: CompileOptions,
) -> Result<CompiledQuery, SparqlError> {
    let mut c = Compiler { view, vars: VarTable::default(), exists: Vec::new() };
    let root = if options.union_default_graph { CGraph::Any } else { CGraph::Default };
    let form = match query {
        Query::Select(sel) => LForm::Select(c.lower_select(sel, &root, &mut HashSet::new())?),
        Query::Ask(pattern) => {
            LForm::Ask(c.lower_pattern(pattern, &root, &mut HashSet::new())?)
        }
        Query::Construct(templates, inner) => LForm::Construct(
            templates.clone(),
            c.lower_select(inner, &root, &mut HashSet::new())?,
        ),
    };
    let mut lquery = LQuery { form, exists: std::mem::take(&mut c.exists) };
    let trace = crate::rewrite::rewrite_query(&mut lquery);
    let logical = crate::logical::render(&c.vars, &lquery, trace.applied());

    let physical = Physical {
        view,
        options,
        est: Estimator::new(view, options.use_cbo),
    };
    let form = match &lquery.form {
        LForm::Select(ls) => CForm::Select(physical.emit_select(ls, &mut HashSet::new())),
        LForm::Ask(node) => CForm::Ask(physical.emit_node(node, &mut HashSet::new())),
        LForm::Construct(templates, ls) => {
            CForm::Construct(templates.clone(), physical.emit_select(ls, &mut HashSet::new()))
        }
    };
    let exists = lquery
        .exists
        .iter()
        .map(|(node, bound)| physical.emit_node(node, &mut bound.clone()))
        .collect();
    Ok(CompiledQuery { vars: c.vars, exists, form, logical })
}

struct Compiler<'a> {
    view: &'a DatasetView,
    vars: VarTable,
    /// Lowered EXISTS patterns, shared across the whole query, each with
    /// the bound-slot snapshot at its filter site.
    exists: Vec<(LNode, HashSet<usize>)>,
}

impl Compiler<'_> {
    fn term_id(&self, term: &Term) -> Option<TermId> {
        self.view.term_id(term)
    }

    fn cpos(&mut self, vt: &VarOrTerm) -> CPos {
        match vt {
            VarOrTerm::Var(v) => CPos::Var(self.vars.slot(v)),
            VarOrTerm::Term(t) => CPos::Const(t.clone(), self.term_id(t)),
        }
    }

    /// Lowers a SELECT into the logical algebra. SELECT-star projection is
    /// resolved here, before any rewrite runs, so later tree surgery can
    /// never change the projected columns.
    fn lower_select(
        &mut self,
        sel: &SelectQuery,
        graph: &CGraph,
        bound: &mut HashSet<usize>,
    ) -> Result<LSelect, SparqlError> {
        let root = self.lower_pattern(&sel.pattern, graph, bound)?;

        let group_slots: Vec<usize> = sel.group_by.iter().map(|v| self.vars.slot(v)).collect();

        let mut aggregates = Vec::new();
        let mut projection = Vec::new();
        if sel.projection.is_empty() {
            // SELECT *: project every user-visible variable in the pattern.
            let mut slots: Vec<usize> = lnode_vars(&root)
                .into_iter()
                .filter(|&s| !self.vars.name(s).starts_with(' '))
                .collect();
            slots.sort_unstable();
            for slot in slots {
                projection.push(CProj { slot, expr: None });
            }
        } else {
            for proj in &sel.projection {
                match proj {
                    Projection::Var(v) => {
                        projection.push(CProj { slot: self.vars.slot(v), expr: None });
                    }
                    Projection::Expr(expr, v) => {
                        let cexpr = self.compile_expr(expr, &mut aggregates)?;
                        projection.push(CProj { slot: self.vars.slot(v), expr: Some(cexpr) });
                    }
                }
            }
        }

        let order_by = sel
            .order_by
            .iter()
            .map(|k| {
                // ORDER BY may reference aggregate outputs by variable name;
                // those are projection slots, so plain compilation works.
                self.compile_expr(&k.expr, &mut aggregates)
                    .map(|e| (e, k.descending))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let having = sel
            .having
            .iter()
            .map(|h| self.compile_expr(h, &mut aggregates))
            .collect::<Result<Vec<_>, _>>()?;

        for proj in &projection {
            bound.insert(proj.slot);
        }

        Ok(LSelect {
            distinct: sel.distinct,
            projection,
            aggregates,
            group_slots,
            having,
            root,
            order_by,
            limit: sel.limit,
            offset: sel.offset,
        })
    }

    fn lower_pattern(
        &mut self,
        pattern: &GraphPattern,
        graph: &CGraph,
        bound: &mut HashSet<usize>,
    ) -> Result<LNode, SparqlError> {
        match pattern {
            GraphPattern::Bgp(tps) => self.lower_bgp(tps, graph, bound),
            GraphPattern::Graph(g, inner) => {
                let cg = match g {
                    VarOrTerm::Var(v) => CGraph::Var(self.vars.slot(v)),
                    VarOrTerm::Term(t) => CGraph::Const(t.clone(), self.term_id(t)),
                };
                let node = self.lower_pattern(inner, &cg, bound)?;
                if let CGraph::Var(slot) = cg {
                    bound.insert(slot);
                }
                Ok(node)
            }
            GraphPattern::Group(members, filters) => {
                // Constant-equality pins: a conjunctive filter
                // `?v = <const>` pins ?v for the whole group. Lowering only
                // *records* the pins (resolved to slots and dictionary
                // IDs); the pin-pushdown rewrite substitutes them into the
                // scans — this is what turns EQ3/EQ7's
                // `FILTER (?t = "#webseries")` from a full cross join into
                // indexed probes. Pins are restricted to IRIs and plain
                // strings, whose term identity coincides with SPARQL value
                // equality under our canonical dictionary.
                let pins: Vec<Pin> = extract_pins(filters)
                    .into_iter()
                    .map(|(v, t)| {
                        let slot = self.vars.slot(&v);
                        let id = self.term_id(&t);
                        Pin { slot, term: t, id }
                    })
                    .collect();
                for pin in &pins {
                    bound.insert(pin.slot);
                }
                let mut children = Vec::with_capacity(members.len());
                for member in members {
                    children.push(self.lower_pattern(member, graph, bound)?);
                }
                let joined = if children.len() == 1 {
                    children.pop().expect("one child")
                } else {
                    LNode::Join(children)
                };
                if filters.is_empty() {
                    Ok(joined)
                } else {
                    let mut aggs = Vec::new();
                    let cfilters = filters
                        .iter()
                        .map(|f| self.compile_expr_in(f, &mut aggs, graph, bound))
                        .collect::<Result<Vec<_>, _>>()?;
                    if !aggs.is_empty() {
                        return Err(SparqlError::Unsupported(
                            "aggregates are not allowed in FILTER".into(),
                        ));
                    }
                    Ok(LNode::Filter { exprs: cfilters, pins, inner: Box::new(joined) })
                }
            }
            GraphPattern::Union(a, b) => {
                let mut bound_a = bound.clone();
                let mut bound_b = bound.clone();
                let na = self.lower_pattern(a, graph, &mut bound_a)?;
                let nb = self.lower_pattern(b, graph, &mut bound_b)?;
                // After a union only vars bound on both branches are
                // certainly bound.
                for s in bound_a.intersection(&bound_b) {
                    bound.insert(*s);
                }
                Ok(LNode::Union(Box::new(na), Box::new(nb)))
            }
            GraphPattern::Optional(a, b) => {
                let na = self.lower_pattern(a, graph, bound)?;
                let mut bound_b = bound.clone();
                let nb = self.lower_pattern(b, graph, &mut bound_b)?;
                Ok(LNode::Optional(Box::new(na), Box::new(nb)))
            }
            GraphPattern::SubSelect(sel) => {
                // SPARQL sub-selects evaluate bottom-up: independent of the
                // outer bindings.
                let mut inner_bound = HashSet::new();
                let lsel = self.lower_select(sel, graph, &mut inner_bound)?;
                for proj in &lsel.projection {
                    bound.insert(proj.slot);
                }
                Ok(LNode::SubSelect(Box::new(lsel)))
            }
            GraphPattern::Values(vars, rows) => {
                let slots: Vec<usize> = vars.iter().map(|v| self.vars.slot(v)).collect();
                for &s in &slots {
                    bound.insert(s);
                }
                Ok(LNode::Values { slots, rows: rows.clone() })
            }
            GraphPattern::Bind(expr, var) => {
                let mut aggs = Vec::new();
                let cexpr = self.compile_expr_in(expr, &mut aggs, graph, bound)?;
                if !aggs.is_empty() {
                    return Err(SparqlError::Unsupported(
                        "aggregates are not allowed in BIND".into(),
                    ));
                }
                let slot = self.vars.slot(var);
                bound.insert(slot);
                Ok(LNode::Extend(slot, cexpr))
            }
            GraphPattern::Minus(inner) => {
                // MINUS evaluates its pattern independently (bottom-up); it
                // binds nothing outward.
                let mut inner_bound = HashSet::new();
                let node = self.lower_pattern(inner, graph, &mut inner_bound)?;
                Ok(LNode::Minus(Box::new(node)))
            }
        }
    }

    fn lower_bgp(
        &mut self,
        tps: &[crate::ast::TriplePattern],
        graph: &CGraph,
        bound: &mut HashSet<usize>,
    ) -> Result<LNode, SparqlError> {
        let mut plain: Vec<CTriple> = Vec::new();
        let mut extras: Vec<LNode> = Vec::new();

        for tp in tps {
            let s = self.cpos(&tp.subject);
            let o = self.cpos(&tp.object);
            match &tp.predicate {
                PredicatePattern::Var(v) => {
                    plain.push(CTriple {
                        s,
                        p: CPos::Var(self.vars.slot(v)),
                        o,
                        g: graph.clone(),
                    });
                }
                PredicatePattern::Path(path) => {
                    self.expand_path(s, path, o, graph, &mut plain, &mut extras)?;
                }
            }
        }

        // Extras (closure paths, alternation unions) run after the indexed
        // triples so their endpoints are bound where possible.
        let mut children = Vec::new();
        if !plain.is_empty() {
            for t in &plain {
                for v in t.var_slots() {
                    bound.insert(v);
                }
            }
            children.push(LNode::Bgp(plain));
        }
        for extra in extras {
            // Update bound set with the vars the extra will bind.
            for v in lnode_vars(&extra) {
                bound.insert(v);
            }
            children.push(extra);
        }
        match children.len() {
            0 => Ok(LNode::Bgp(Vec::new())),
            1 => Ok(children.pop().expect("one child")),
            _ => Ok(LNode::Join(children)),
        }
    }

    /// The SPARQL algebra path translation: sequences create fresh
    /// intermediate variables, alternatives create unions, inverses swap
    /// endpoints, and closure operators become [`PathStep`]s.
    fn expand_path(
        &mut self,
        s: CPos,
        path: &PropertyPath,
        o: CPos,
        graph: &CGraph,
        plain: &mut Vec<CTriple>,
        extras: &mut Vec<LNode>,
    ) -> Result<(), SparqlError> {
        match path {
            PropertyPath::Iri(iri) => {
                let term = Term::Iri(iri.clone());
                let id = self.term_id(&term);
                plain.push(CTriple { s, p: CPos::Const(term, id), o, g: graph.clone() });
                Ok(())
            }
            PropertyPath::Inverse(inner) => self.expand_path(o, inner, s, graph, plain, extras),
            PropertyPath::Sequence(a, b) => {
                let mid = CPos::Var(self.vars.fresh());
                self.expand_path(s, a, mid.clone(), graph, plain, extras)?;
                self.expand_path(mid, b, o, graph, plain, extras)
            }
            PropertyPath::Alternative(a, b) => {
                let mut plain_a = Vec::new();
                let mut extras_a = Vec::new();
                self.expand_path(s.clone(), a, o.clone(), graph, &mut plain_a, &mut extras_a)?;
                let mut plain_b = Vec::new();
                let mut extras_b = Vec::new();
                self.expand_path(s, b, o, graph, &mut plain_b, &mut extras_b)?;
                let branch = |plain: Vec<CTriple>, mut extras: Vec<LNode>| {
                    let mut children = Vec::new();
                    if !plain.is_empty() {
                        children.push(LNode::Bgp(plain));
                    }
                    children.append(&mut extras);
                    match children.len() {
                        0 => LNode::Bgp(Vec::new()),
                        1 => children.pop().expect("one child"),
                        _ => LNode::Join(children),
                    }
                };
                let na = branch(plain_a, extras_a);
                let nb = branch(plain_b, extras_b);
                extras.push(LNode::Union(Box::new(na), Box::new(nb)));
                Ok(())
            }
            PropertyPath::ZeroOrMore(_)
            | PropertyPath::OneOrMore(_)
            | PropertyPath::ZeroOrOne(_) => {
                let graph_constraint = match graph {
                    CGraph::Any => GraphConstraint::Any,
                    CGraph::Default => GraphConstraint::DefaultOnly,
                    CGraph::Const(_, Some(id)) => GraphConstraint::Named(*id),
                    CGraph::Const(_, None) => GraphConstraint::Named(TermId(u64::MAX)),
                    CGraph::Var(_) => {
                        return Err(SparqlError::Unsupported(
                            "closure property paths inside GRAPH ?var are not supported"
                                .into(),
                        ))
                    }
                };
                extras.push(LNode::Path(PathStep {
                    s,
                    o,
                    path: self.compile_cpath(path),
                    graph: graph_constraint,
                }));
                Ok(())
            }
        }
    }

    fn compile_cpath(&mut self, path: &PropertyPath) -> CPath {
        match path {
            PropertyPath::Iri(iri) => {
                let term = Term::Iri(iri.clone());
                let id = self.term_id(&term);
                CPath::Iri(term, id)
            }
            PropertyPath::Inverse(p) => CPath::Inverse(Box::new(self.compile_cpath(p))),
            PropertyPath::Sequence(a, b) => CPath::Sequence(
                Box::new(self.compile_cpath(a)),
                Box::new(self.compile_cpath(b)),
            ),
            PropertyPath::Alternative(a, b) => CPath::Alternative(
                Box::new(self.compile_cpath(a)),
                Box::new(self.compile_cpath(b)),
            ),
            PropertyPath::ZeroOrMore(p) => CPath::ZeroOrMore(Box::new(self.compile_cpath(p))),
            PropertyPath::OneOrMore(p) => CPath::OneOrMore(Box::new(self.compile_cpath(p))),
            PropertyPath::ZeroOrOne(p) => CPath::ZeroOrOne(Box::new(self.compile_cpath(p))),
        }
    }

    /// Compiles an expression in a pattern context, allowing
    /// `EXISTS { ... }` (which lowers its pattern against the current
    /// graph context and records the bound-slot snapshot for the physical
    /// planner).
    fn compile_expr_in(
        &mut self,
        expr: &Expression,
        aggregates: &mut Vec<CAggregate>,
        graph: &CGraph,
        bound: &HashSet<usize>,
    ) -> Result<CExpr, SparqlError> {
        match expr {
            Expression::Exists(pattern, negated) => {
                let mut inner_bound = bound.clone();
                let node = self.lower_pattern(pattern, graph, &mut inner_bound)?;
                self.exists.push((node, bound.clone()));
                let exists_ref = CExpr::ExistsRef(self.exists.len() - 1);
                Ok(if *negated {
                    CExpr::Not(Box::new(exists_ref))
                } else {
                    exists_ref
                })
            }
            Expression::Or(a, b) => Ok(CExpr::Or(
                Box::new(self.compile_expr_in(a, aggregates, graph, bound)?),
                Box::new(self.compile_expr_in(b, aggregates, graph, bound)?),
            )),
            Expression::And(a, b) => Ok(CExpr::And(
                Box::new(self.compile_expr_in(a, aggregates, graph, bound)?),
                Box::new(self.compile_expr_in(b, aggregates, graph, bound)?),
            )),
            Expression::Not(a) => Ok(CExpr::Not(Box::new(
                self.compile_expr_in(a, aggregates, graph, bound)?,
            ))),
            other => self.compile_expr(other, aggregates),
        }
    }

    fn compile_expr(
        &mut self,
        expr: &Expression,
        aggregates: &mut Vec<CAggregate>,
    ) -> Result<CExpr, SparqlError> {
        Ok(match expr {
            Expression::Var(v) => CExpr::Var(self.vars.slot(v)),
            Expression::Constant(t) => CExpr::Const(Value::from_term(t)),
            Expression::Or(a, b) => CExpr::Or(
                Box::new(self.compile_expr(a, aggregates)?),
                Box::new(self.compile_expr(b, aggregates)?),
            ),
            Expression::And(a, b) => CExpr::And(
                Box::new(self.compile_expr(a, aggregates)?),
                Box::new(self.compile_expr(b, aggregates)?),
            ),
            Expression::Not(a) => CExpr::Not(Box::new(self.compile_expr(a, aggregates)?)),
            Expression::Compare(op, a, b) => {
                let ca = self.compile_expr(a, aggregates)?;
                let cb = self.compile_expr(b, aggregates)?;
                // Fast path: ?v = <constant term>  →  ID comparison.
                if *op == crate::ast::CompareOp::Eq {
                    if let (Expression::Var(v), Expression::Constant(t)) = (&**a, &**b) {
                        let slot = self.vars.slot(v);
                        let id = self.term_id(t).map(|i| i.0);
                        let fallback =
                            CExpr::Compare(*op, Box::new(ca.clone()), Box::new(cb.clone()));
                        return Ok(CExpr::SlotEqConst(slot, id, Box::new(fallback)));
                    }
                }
                CExpr::Compare(*op, Box::new(ca), Box::new(cb))
            }
            Expression::Arith(op, a, b) => CExpr::Arith(
                *op,
                Box::new(self.compile_expr(a, aggregates)?),
                Box::new(self.compile_expr(b, aggregates)?),
            ),
            Expression::Neg(a) => CExpr::Neg(Box::new(self.compile_expr(a, aggregates)?)),
            Expression::Call(func, args) => {
                // Fast path: isLiteral(?v) / isIRI(?v) / isBlank(?v).
                if args.len() == 1 {
                    if let Expression::Var(v) = &args[0] {
                        let kind = match func {
                            crate::ast::Function::IsLiteral => Some(TermKind::Literal),
                            crate::ast::Function::IsIri => Some(TermKind::Iri),
                            crate::ast::Function::IsBlank => Some(TermKind::Blank),
                            _ => None,
                        };
                        if let Some(kind) = kind {
                            return Ok(CExpr::KindCheck(self.vars.slot(v), kind));
                        }
                    }
                }
                let cargs = args
                    .iter()
                    .map(|a| self.compile_expr(a, aggregates))
                    .collect::<Result<Vec<_>, _>>()?;
                CExpr::Call(*func, cargs)
            }
            Expression::Aggregate(agg) => {
                let cagg = match &**agg {
                    Aggregate::CountAll => CAggregate::CountAll,
                    Aggregate::Count { distinct, expr } => CAggregate::Count {
                        distinct: *distinct,
                        expr: self.compile_expr(expr, aggregates)?,
                    },
                    Aggregate::Sum(e) => CAggregate::Sum(self.compile_expr(e, aggregates)?),
                    Aggregate::Avg(e) => CAggregate::Avg(self.compile_expr(e, aggregates)?),
                    Aggregate::Min(e) => CAggregate::Min(self.compile_expr(e, aggregates)?),
                    Aggregate::Max(e) => CAggregate::Max(self.compile_expr(e, aggregates)?),
                };
                aggregates.push(cagg);
                CExpr::Agg(aggregates.len() - 1)
            }
            Expression::Exists(_, _) => {
                return Err(SparqlError::Unsupported(
                    "EXISTS is only allowed inside FILTER".into(),
                ))
            }
        })
    }
}

/// Extracts `?v = <const>` pins from a conjunctive filter list. Only IRIs
/// and plain string literals qualify: for those, term identity under the
/// canonical dictionary coincides with SPARQL value equality, so pattern
/// substitution cannot change the result set.
fn extract_pins(filters: &[Expression]) -> Vec<(String, Term)> {
    fn walk(expr: &Expression, out: &mut Vec<(String, Term)>) {
        match expr {
            Expression::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Expression::Compare(crate::ast::CompareOp::Eq, a, b) => {
                let pair = match (&**a, &**b) {
                    (Expression::Var(v), Expression::Constant(t))
                    | (Expression::Constant(t), Expression::Var(v)) => Some((v, t)),
                    _ => None,
                };
                if let Some((v, t)) = pair {
                    let safe = match t {
                        Term::Iri(_) => true,
                        Term::Literal(lit) => {
                            lit.effective_datatype() == rdf_model::vocab::xsd::STRING
                        }
                        Term::Blank(_) => false,
                    };
                    if safe && !out.iter().any(|(existing, _)| existing == v) {
                        out.push((v.clone(), t.clone()));
                    }
                }
            }
            _ => {}
        }
    }
    let mut pins = Vec::new();
    for f in filters {
        walk(f, &mut pins);
    }
    pins
}

/// Physical planner: walks the rewritten logical tree, threading the
/// certainly-bound slot set exactly like lowering did, and emits the
/// executable [`Node`] tree. BGP join ordering and strategy selection are
/// delegated to [`BgpPlanner`].
struct Physical<'a> {
    view: &'a DatasetView,
    options: CompileOptions,
    est: Estimator<'a>,
}

impl Physical<'_> {
    fn planner(&self) -> BgpPlanner<'_> {
        BgpPlanner {
            view: self.view,
            est: &self.est,
            force_join: self.options.force_join,
            use_cbo: self.options.use_cbo,
        }
    }

    fn emit_select(&self, lsel: &LSelect, bound: &mut HashSet<usize>) -> CSelect {
        let root = self.emit_node(&lsel.root, bound);
        for proj in &lsel.projection {
            bound.insert(proj.slot);
        }
        CSelect {
            distinct: lsel.distinct,
            projection: lsel.projection.clone(),
            aggregates: lsel.aggregates.clone(),
            group_slots: lsel.group_slots.clone(),
            having: lsel.having.clone(),
            root,
            order_by: lsel.order_by.clone(),
            limit: lsel.limit,
            offset: lsel.offset,
        }
    }

    fn emit_node(&self, node: &LNode, bound: &mut HashSet<usize>) -> Node {
        match node {
            LNode::Bgp(tps) => self
                .planner()
                .plan(tps.clone(), bound)
                .unwrap_or(Node::Steps(Vec::new())),
            LNode::Path(p) => {
                if let CPos::Var(s) = &p.s {
                    bound.insert(*s);
                }
                if let CPos::Var(s) = &p.o {
                    bound.insert(*s);
                }
                Node::Path(p.clone())
            }
            LNode::Join(children) => {
                Node::Join(children.iter().map(|c| self.emit_node(c, bound)).collect())
            }
            LNode::Filter { exprs, inner, .. } => {
                Node::Filter(exprs.clone(), Box::new(self.emit_node(inner, bound)))
            }
            LNode::Union(a, b) => {
                let mut bound_a = bound.clone();
                let mut bound_b = bound.clone();
                let na = self.emit_node(a, &mut bound_a);
                let nb = self.emit_node(b, &mut bound_b);
                for s in bound_a.intersection(&bound_b) {
                    bound.insert(*s);
                }
                Node::Union(Box::new(na), Box::new(nb))
            }
            LNode::Optional(a, b) => {
                let na = self.emit_node(a, bound);
                let mut bound_b = bound.clone();
                let nb = self.emit_node(b, &mut bound_b);
                Node::Optional(Box::new(na), Box::new(nb))
            }
            LNode::SubSelect(lsel) => {
                let mut inner_bound = HashSet::new();
                let csel = self.emit_select(lsel, &mut inner_bound);
                for proj in &csel.projection {
                    bound.insert(proj.slot);
                }
                Node::SubSelect(Box::new(csel))
            }
            LNode::Values { slots, rows } => {
                for &s in slots {
                    bound.insert(s);
                }
                Node::Values { slots: slots.clone(), rows: rows.clone() }
            }
            LNode::Extend(slot, expr) => {
                bound.insert(*slot);
                Node::Extend(*slot, expr.clone())
            }
            LNode::Minus(inner) => {
                let mut inner_bound = HashSet::new();
                Node::Minus(Box::new(self.emit_node(inner, &mut inner_bound)))
            }
            LNode::Unsatisfiable(inner) => {
                // A subtree proven empty by a missing constant still emits
                // its real operators when it contains a zero-row scan that
                // short-circuits execution anyway: the planner drives the
                // zero-estimate pattern first, and EXPLAIN keeps showing
                // the actual scans. Only subtrees with no natural short
                // circuit (constant-false filters over live patterns,
                // empty unions) collapse to one synthetic empty scan.
                if short_circuits(inner) {
                    self.emit_node(inner, bound)
                } else {
                    for v in lnode_vars(inner) {
                        bound.insert(v);
                    }
                    Node::Steps(vec![unsatisfiable_step()])
                }
            }
        }
    }
}

/// True when executing `node` starts from a scan that produces zero rows
/// on its own — an unsatisfiable triple pattern, or a join whose first
/// (reordered) input is proven empty. Such subtrees are emitted normally:
/// the pipeline stops at the zero-row producer.
fn short_circuits(node: &LNode) -> bool {
    match node {
        LNode::Bgp(tps) => tps.iter().any(|t| t.unsatisfiable()),
        LNode::Join(children) => children.first().is_some_and(short_circuits),
        LNode::Filter { inner, .. } => short_circuits(inner),
        LNode::Unsatisfiable(_) => true,
        _ => false,
    }
}

/// A synthetic always-empty step: every position is a constant absent from
/// the dictionary, which every execution path (row probe, hash build,
/// vectorized scan) already treats as a zero-row scan.
fn unsatisfiable_step() -> Step {
    let marker = Term::iri("urn:pgrdf:unsatisfiable");
    Step {
        triple: CTriple {
            s: CPos::Const(marker.clone(), None),
            p: CPos::Const(marker.clone(), None),
            o: CPos::Const(marker, None),
            g: CGraph::Any,
        },
        strategy: Strategy::IndexNlj,
        est_scan: 0,
        est_out: 0,
        access: None,
    }
}

/// All variable slots a node can bind.
pub fn node_vars(node: &Node) -> Vec<usize> {
    let mut out = Vec::new();
    collect_vars(node, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_vars(node: &Node, out: &mut Vec<usize>) {
    match node {
        Node::Steps(steps) => {
            for step in steps {
                out.extend(step.triple.var_slots());
            }
        }
        Node::Path(p) => {
            if let CPos::Var(s) = &p.s {
                out.push(*s);
            }
            if let CPos::Var(s) = &p.o {
                out.push(*s);
            }
        }
        Node::Join(children) => {
            for c in children {
                collect_vars(c, out);
            }
        }
        Node::Filter(_, inner) => collect_vars(inner, out),
        Node::Union(a, b) | Node::Optional(a, b) => {
            collect_vars(a, out);
            collect_vars(b, out);
        }
        Node::SubSelect(sel) => out.extend(sel.projected_slots()),
        Node::Values { slots, .. } => out.extend(slots.iter().copied()),
        Node::Extend(slot, _) => out.push(*slot),
        Node::Minus(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use quadstore::Store;
    use rdf_model::Quad;

    fn small_store() -> Store {
        let store = Store::new();
        store.create_model("m").unwrap();
        let f = "http://pg/r/follows";
        let tag = "http://pg/k/hasTag";
        let mut quads = Vec::new();
        for i in 0..100u32 {
            quads.push(
                Quad::triple(
                    Term::iri(format!("http://pg/v{i}")),
                    Term::iri(f),
                    Term::iri(format!("http://pg/v{}", (i + 1) % 100)),
                )
                .unwrap(),
            );
        }
        quads.push(
            Quad::triple(Term::iri("http://pg/v1"), Term::iri(tag), Term::string("#x")).unwrap(),
        );
        store.bulk_load("m", &quads).unwrap();
        store
    }

    #[test]
    fn selective_pattern_planned_first() {
        let store = small_store();
        let view = store.dataset("m").unwrap();
        let q = parse_query(
            "PREFIX k: <http://pg/k/> PREFIX r: <http://pg/r/>\
             SELECT ?nf WHERE { ?n k:hasTag \"#x\" . ?nf r:follows ?n }",
        )
        .unwrap();
        let c = compile(&view, &q).unwrap();
        let CForm::Select(sel) = c.form else { panic!("expected select") };
        let Node::Steps(steps) = &sel.root else { panic!("expected steps") };
        // hasTag (est 1) must be planned before follows (est 100).
        assert!(steps[0].est_scan <= steps[1].est_scan);
        assert_eq!(steps.len(), 2);
        // Second step is joined: small left side → NLJ.
        assert_eq!(steps[1].strategy, Strategy::IndexNlj);
    }

    #[test]
    fn skewed_data_reorders_joined_patterns_by_stat_fanout() {
        // 200 "wide" edges spread over 200 subjects but only 5 objects,
        // 100 "narrow" edges all pointing at one hub object, one "rare"
        // edge to drive. The narrow pattern has the smaller *total*
        // cardinality (100 < 200), so cardinality ordering would probe it
        // first — but its join slot is the object position, where the
        // model has only ~7 distinct values, so each probe fans out to
        // ~14 rows. The wide pattern joined by subject fans out to ~1.
        // Stats-based ordering must run wide before narrow.
        let store = Store::new();
        store.create_model("m").unwrap();
        let mut quads = Vec::new();
        for i in 0..200 {
            quads.push(
                Quad::triple(
                    Term::iri(format!("http://pg/s{i}")),
                    Term::iri("http://pg/p/wide"),
                    Term::iri(format!("http://pg/obj{}", i % 5)),
                )
                .unwrap(),
            );
        }
        for i in 0..100 {
            quads.push(
                Quad::triple(
                    Term::iri(format!("http://pg/t{i}")),
                    Term::iri("http://pg/p/narrow"),
                    Term::iri("http://pg/hub"),
                )
                .unwrap(),
            );
        }
        quads.push(
            Quad::triple(
                Term::iri("http://pg/a"),
                Term::iri("http://pg/p/rare"),
                Term::iri("http://pg/s0"),
            )
            .unwrap(),
        );
        store.bulk_load("m", &quads).unwrap();
        let view = store.dataset("m").unwrap();
        let q = parse_query(
            "PREFIX p: <http://pg/p/>\
             SELECT ?z WHERE { ?x p:rare ?y . ?y p:wide ?z . ?w p:narrow ?y }",
        )
        .unwrap();
        let c = compile(&view, &q).unwrap();
        let CForm::Select(sel) = c.form else { panic!("expected select") };
        let Node::Steps(steps) = &sel.root else { panic!("expected steps") };
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].est_scan, 1, "rare pattern drives");
        assert_eq!(
            steps[1].est_scan, 200,
            "low-fanout wide join must run before the skewed narrow join"
        );
        assert_eq!(steps[2].est_scan, 100);
    }

    #[test]
    fn sequence_paths_expand_to_joins() {
        let store = small_store();
        let view = store.dataset("m").unwrap();
        let q = parse_query(
            "PREFIX r: <http://pg/r/> SELECT ?y WHERE { <http://pg/v1> r:follows/r:follows ?y }",
        )
        .unwrap();
        let c = compile(&view, &q).unwrap();
        let CForm::Select(sel) = c.form else { panic!("expected select") };
        let Node::Steps(steps) = &sel.root else { panic!("expected steps") };
        assert_eq!(steps.len(), 2);
    }

    #[test]
    fn alternation_becomes_union() {
        let store = small_store();
        let view = store.dataset("m").unwrap();
        let q = parse_query(
            "PREFIX r: <http://pg/r/> SELECT ?y WHERE { ?x (r:follows|r:follows) ?y }",
        )
        .unwrap();
        let c = compile(&view, &q).unwrap();
        let CForm::Select(sel) = c.form else { panic!("expected select") };
        assert!(matches!(sel.root, Node::Union(_, _)));
    }

    #[test]
    fn closure_becomes_path_step() {
        let store = small_store();
        let view = store.dataset("m").unwrap();
        let q = parse_query(
            "PREFIX r: <http://pg/r/> SELECT ?y WHERE { <http://pg/v1> r:follows+ ?y }",
        )
        .unwrap();
        let c = compile(&view, &q).unwrap();
        let CForm::Select(sel) = c.form else { panic!("expected select") };
        assert!(matches!(sel.root, Node::Path(_)));
    }

    #[test]
    fn missing_constant_marks_unsatisfiable() {
        let store = small_store();
        let view = store.dataset("m").unwrap();
        let q = parse_query("SELECT ?x WHERE { ?x <http://nowhere> ?y }").unwrap();
        let c = compile(&view, &q).unwrap();
        let CForm::Select(sel) = c.form else { panic!("expected select") };
        let Node::Steps(steps) = &sel.root else { panic!("expected steps") };
        assert!(steps[0].triple.unsatisfiable());
        assert_eq!(steps[0].est_scan, 0);
    }

    #[test]
    fn aggregates_are_collected() {
        let store = small_store();
        let view = store.dataset("m").unwrap();
        let q = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?x ?p ?y }").unwrap();
        let c = compile(&view, &q).unwrap();
        let CForm::Select(sel) = c.form else { panic!("expected select") };
        assert_eq!(sel.aggregates.len(), 1);
        assert!(sel.is_grouped());
        assert!(matches!(sel.projection[0].expr, Some(CExpr::Agg(0))));
    }

    #[test]
    fn filter_eq_const_gets_fast_path() {
        let store = small_store();
        let view = store.dataset("m").unwrap();
        let q = parse_query(
            "SELECT ?v WHERE { ?x ?k ?v FILTER (?v = \"#x\") }",
        )
        .unwrap();
        let c = compile(&view, &q).unwrap();
        let CForm::Select(sel) = c.form else { panic!("expected select") };
        let Node::Filter(filters, _) = &sel.root else { panic!("expected filter") };
        assert!(matches!(filters[0], CExpr::SlotEqConst(_, Some(_), _)));
    }

    #[test]
    fn fresh_vars_are_hidden_from_select_star() {
        let store = small_store();
        let view = store.dataset("m").unwrap();
        let q = parse_query(
            "PREFIX r: <http://pg/r/> SELECT * WHERE { ?x r:follows/r:follows ?y }",
        )
        .unwrap();
        let c = compile(&view, &q).unwrap();
        let CForm::Select(sel) = c.form else { panic!("expected select") };
        let names: Vec<&str> = sel
            .projection
            .iter()
            .map(|p| c.vars.name(p.slot))
            .collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
