//! Rule-based rewrites over the logical algebra ([`crate::logical`]).
//!
//! The pass runs between lowering and physical planning:
//!
//! 1. **pin-pushdown** — a filter that pins `?v = <const>` substitutes the
//!    resolved dictionary ID into every scan position of its subtree
//!    (subject/object always, predicate and graph for IRIs — this is the
//!    GRAPH-scope narrowing rule when the pinned variable is a graph
//!    variable) and prepends a one-row VALUES so `?v` stays bound. The
//!    original filter is kept as a safety net.
//! 2. **fold-constants** — boolean algebra over constant subexpressions;
//!    filters reduced to `true` are dropped.
//! 3. **prune-unsatisfiable** — a scan whose constant is absent from the
//!    dictionary can never match; the proof propagates structurally
//!    (empty UNION branches vanish, empty OPTIONAL right sides vanish,
//!    empty MINUS sides become no-ops, unsatisfiable join inputs are
//!    hoisted to the front so execution short-circuits before any work).
//! 4. **constant-false-filter** — `FILTER(false)` proves its scope empty.
//! 5. **prune-unused-bind** — BIND targets that no projection, filter,
//!    pattern or sibling expression references are dead code (BIND
//!    expressions are pure) and are removed.
//!
//! Rules run to a bounded fixpoint; every applied rule is recorded in the
//! trace rendered by `EXPLAIN LOGICAL`.

use std::collections::HashSet;
use std::mem;

use rdf_model::Term;

use crate::expr::{CExpr, Value};
use crate::logical::{LForm, LNode, LQuery, LSelect, Pin};
use crate::plan::{CAggregate, CGraph, CPos, PathStep};

/// Upper bound on rewrite fixpoint iterations. The rules are monotone
/// (they only shrink or annotate the tree), so convergence is fast; the
/// bound is a safety net, not a tuning knob.
const MAX_PASSES: usize = 4;

/// Names of rewrite rules applied to a query, in first-fired order.
#[derive(Debug, Default)]
pub struct RewriteTrace {
    applied: Vec<&'static str>,
}

impl RewriteTrace {
    fn note(&mut self, rule: &'static str) {
        if !self.applied.contains(&rule) {
            self.applied.push(rule);
        }
    }

    /// The applied rule names.
    pub fn applied(&self) -> &[&'static str] {
        &self.applied
    }
}

/// Rewrites a lowered query in place and reports which rules fired.
pub fn rewrite_query(query: &mut LQuery) -> RewriteTrace {
    let mut trace = RewriteTrace::default();
    {
        let mut roots: Vec<&mut LNode> = Vec::new();
        match &mut query.form {
            LForm::Select(sel) => roots.push(&mut sel.root),
            LForm::Ask(node) => roots.push(node),
            LForm::Construct(_, sel) => roots.push(&mut sel.root),
        }
        for (node, _) in &mut query.exists {
            roots.push(node);
        }
        for root in &mut roots {
            push_pins(root, &mut trace);
        }
        for _ in 0..MAX_PASSES {
            let mut changed = false;
            for root in &mut roots {
                changed |= fold_constants(root, &mut trace);
                changed |= propagate_unsat(root, &mut trace);
            }
            if !changed {
                break;
            }
        }
    }
    for _ in 0..MAX_PASSES {
        if !prune_unused_binds(query, &mut trace) {
            break;
        }
    }
    trace
}

fn take(node: &mut LNode) -> LNode {
    mem::replace(node, LNode::Bgp(Vec::new()))
}

// ---------------------------------------------------------------------------
// Pin pushdown
// ---------------------------------------------------------------------------

fn push_pins(node: &mut LNode, trace: &mut RewriteTrace) {
    match node {
        LNode::Filter { pins, inner, .. } => {
            push_pins(inner, trace);
            if pins.is_empty() {
                return;
            }
            for pin in pins.iter() {
                substitute(inner, pin);
            }
            let values = LNode::Values {
                slots: pins.iter().map(|p| p.slot).collect(),
                rows: vec![pins.iter().map(|p| Some(p.term.clone())).collect()],
            };
            match &mut **inner {
                LNode::Join(children) => children.insert(0, values),
                _ => {
                    let prev = take(inner);
                    **inner = LNode::Join(vec![values, prev]);
                }
            }
            trace.note("pin-pushdown");
        }
        LNode::Join(children) => {
            for c in children {
                push_pins(c, trace);
            }
        }
        LNode::Union(a, b) | LNode::Optional(a, b) => {
            push_pins(a, trace);
            push_pins(b, trace);
        }
        LNode::Minus(inner) | LNode::Unsatisfiable(inner) => push_pins(inner, trace),
        LNode::SubSelect(sel) => push_pins(&mut sel.root, trace),
        LNode::Bgp(_) | LNode::Path(_) | LNode::Values { .. } | LNode::Extend(..) => {}
    }
}

/// Substitutes a pinned constant into every scan position of a subtree.
/// Does not descend into scopes with their own binding rules (sub-selects,
/// VALUES, BIND): the safety-net filter still constrains those.
fn substitute(node: &mut LNode, pin: &Pin) {
    match node {
        LNode::Bgp(tps) => {
            for t in tps {
                substitute_pos(&mut t.s, pin, false);
                substitute_pos(&mut t.p, pin, true);
                substitute_pos(&mut t.o, pin, false);
                if matches!(&t.g, CGraph::Var(s) if *s == pin.slot)
                    && matches!(&pin.term, Term::Iri(_))
                {
                    t.g = CGraph::Const(pin.term.clone(), pin.id);
                }
            }
        }
        LNode::Path(p) => {
            substitute_path(p, pin);
        }
        LNode::Join(children) => {
            for c in children {
                substitute(c, pin);
            }
        }
        LNode::Filter { inner, .. } => substitute(inner, pin),
        LNode::Union(a, b) | LNode::Optional(a, b) => {
            substitute(a, pin);
            substitute(b, pin);
        }
        LNode::Minus(inner) => substitute(inner, pin),
        LNode::Unsatisfiable(inner) => substitute(inner, pin),
        LNode::SubSelect(_) | LNode::Values { .. } | LNode::Extend(..) => {}
    }
}

fn substitute_pos(pos: &mut CPos, pin: &Pin, predicate: bool) {
    if predicate && !matches!(&pin.term, Term::Iri(_)) {
        return;
    }
    if matches!(pos, CPos::Var(s) if *s == pin.slot) {
        *pos = CPos::Const(pin.term.clone(), pin.id);
    }
}

fn substitute_path(p: &mut PathStep, pin: &Pin) {
    substitute_pos(&mut p.s, pin, false);
    substitute_pos(&mut p.o, pin, false);
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

fn fold_constants(node: &mut LNode, trace: &mut RewriteTrace) -> bool {
    let changed = match node {
        LNode::Join(children) => {
            let mut c = false;
            for child in children {
                c |= fold_constants(child, trace);
            }
            c
        }
        LNode::Filter { exprs, inner, pins } => {
            let mut c = fold_constants(inner, trace);
            for e in exprs.iter_mut() {
                c |= fold_expr(e);
            }
            let before = exprs.len();
            exprs.retain(|e| !matches!(e, CExpr::Const(Value::Bool(true))));
            if exprs.len() != before {
                c = true;
            }
            if exprs.is_empty() && pins.is_empty() {
                let prev = take(inner);
                *node = prev;
                c = true;
            }
            c
        }
        LNode::Union(a, b) | LNode::Optional(a, b) => {
            let ca = fold_constants(a, trace);
            let cb = fold_constants(b, trace);
            ca | cb
        }
        LNode::Minus(inner) => fold_constants(inner, trace),
        LNode::SubSelect(sel) => fold_constants(&mut sel.root, trace),
        LNode::Unsatisfiable(_)
        | LNode::Bgp(_)
        | LNode::Path(_)
        | LNode::Values { .. }
        | LNode::Extend(..) => false,
    };
    if changed {
        trace.note("fold-constants");
    }
    changed
}

/// Boolean-algebra folding over a compiled expression. Only constant
/// booleans participate: value coercion rules (effective boolean value of
/// numerics, errors) stay in the evaluator.
fn fold_expr(expr: &mut CExpr) -> bool {
    match expr {
        CExpr::And(a, b) => {
            let changed = fold_expr(a) | fold_expr(b);
            if let CExpr::Const(Value::Bool(false)) = **a {
                *expr = CExpr::Const(Value::Bool(false));
                return true;
            } else if let CExpr::Const(Value::Bool(false)) = **b {
                *expr = CExpr::Const(Value::Bool(false));
                return true;
            } else if let CExpr::Const(Value::Bool(true)) = **a {
                *expr = mem::replace(b, CExpr::Const(Value::Bool(true)));
                return true;
            } else if let CExpr::Const(Value::Bool(true)) = **b {
                *expr = mem::replace(a, CExpr::Const(Value::Bool(true)));
                return true;
            }
            changed
        }
        CExpr::Or(a, b) => {
            let changed = fold_expr(a) | fold_expr(b);
            if let CExpr::Const(Value::Bool(true)) = **a {
                *expr = CExpr::Const(Value::Bool(true));
                return true;
            } else if let CExpr::Const(Value::Bool(true)) = **b {
                *expr = CExpr::Const(Value::Bool(true));
                return true;
            } else if let CExpr::Const(Value::Bool(false)) = **a {
                *expr = mem::replace(b, CExpr::Const(Value::Bool(false)));
                return true;
            } else if let CExpr::Const(Value::Bool(false)) = **b {
                *expr = mem::replace(a, CExpr::Const(Value::Bool(false)));
                return true;
            }
            changed
        }
        CExpr::Not(a) => {
            let changed = fold_expr(a);
            if let CExpr::Const(Value::Bool(v)) = **a {
                *expr = CExpr::Const(Value::Bool(!v));
                return true;
            }
            changed
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Unsatisfiability
// ---------------------------------------------------------------------------

fn propagate_unsat(node: &mut LNode, trace: &mut RewriteTrace) -> bool {
    let mut changed = match node {
        LNode::Join(children) => {
            let mut c = false;
            for child in children.iter_mut() {
                c |= propagate_unsat(child, trace);
            }
            c
        }
        LNode::Filter { inner, .. } => propagate_unsat(inner, trace),
        LNode::Union(a, b) | LNode::Optional(a, b) => {
            let ca = propagate_unsat(a, trace);
            let cb = propagate_unsat(b, trace);
            ca | cb
        }
        LNode::Minus(inner) => propagate_unsat(inner, trace),
        LNode::SubSelect(sel) => propagate_unsat(&mut sel.root, trace),
        // Already-proven subtrees are final; do not re-derive.
        LNode::Unsatisfiable(_)
        | LNode::Bgp(_)
        | LNode::Path(_)
        | LNode::Values { .. }
        | LNode::Extend(..) => false,
    };

    match node {
        LNode::Bgp(tps) => {
            if !tps.is_empty() && tps.iter().any(|t| t.unsatisfiable()) {
                let inner = take(node);
                *node = LNode::Unsatisfiable(Box::new(inner));
                trace.note("prune-unsatisfiable");
                changed = true;
            }
        }
        LNode::Join(children) => {
            if children.iter().any(|c| matches!(c, LNode::Unsatisfiable(_))) {
                // Hoist proven-empty inputs to the front: the pipeline
                // starts with a zero-row producer and never runs the rest.
                children.sort_by_key(|c| !matches!(c, LNode::Unsatisfiable(_)));
                let inner = take(node);
                *node = LNode::Unsatisfiable(Box::new(inner));
                trace.note("prune-unsatisfiable");
                changed = true;
            } else {
                let before = children.len();
                if before > 1 {
                    children.retain(|c| !matches!(c, LNode::Bgp(tps) if tps.is_empty()));
                    if children.is_empty() {
                        *node = LNode::Bgp(Vec::new());
                        changed = true;
                    }
                }
                if let LNode::Join(children) = node {
                    if children.len() != before {
                        trace.note("simplify-join");
                        changed = true;
                    }
                    if children.len() == 1 {
                        let only = children.pop().expect("single child");
                        *node = only;
                        trace.note("simplify-join");
                        changed = true;
                    }
                }
            }
        }
        LNode::Union(a, b) => {
            let a_unsat = matches!(&**a, LNode::Unsatisfiable(_));
            let b_unsat = matches!(&**b, LNode::Unsatisfiable(_));
            if a_unsat && b_unsat {
                let inner = take(node);
                *node = LNode::Unsatisfiable(Box::new(inner));
                trace.note("prune-unsatisfiable");
                changed = true;
            } else if a_unsat {
                *node = take(b);
                trace.note("prune-empty-union-branch");
                changed = true;
            } else if b_unsat {
                *node = take(a);
                trace.note("prune-empty-union-branch");
                changed = true;
            }
        }
        LNode::Optional(a, b) => {
            if matches!(&**a, LNode::Unsatisfiable(_)) {
                let inner = take(node);
                *node = LNode::Unsatisfiable(Box::new(inner));
                trace.note("prune-unsatisfiable");
                changed = true;
            } else if matches!(&**b, LNode::Unsatisfiable(_)) {
                // OPTIONAL over an empty right side keeps every left row.
                *node = take(a);
                trace.note("drop-empty-optional");
                changed = true;
            }
        }
        LNode::Minus(inner) => {
            if matches!(&**inner, LNode::Unsatisfiable(_)) {
                // MINUS an empty set removes nothing.
                *node = LNode::Bgp(Vec::new());
                trace.note("drop-empty-minus");
                changed = true;
            }
        }
        LNode::Filter { exprs, inner, .. } => {
            let false_filter = exprs
                .iter()
                .any(|e| matches!(e, CExpr::Const(Value::Bool(false))));
            if false_filter || matches!(&**inner, LNode::Unsatisfiable(_)) {
                if let LNode::Unsatisfiable(proved) = &mut **inner {
                    let unwrapped = take(proved);
                    **inner = unwrapped;
                }
                let whole = take(node);
                *node = LNode::Unsatisfiable(Box::new(whole));
                trace.note(if false_filter {
                    "constant-false-filter"
                } else {
                    "prune-unsatisfiable"
                });
                changed = true;
            }
        }
        LNode::Unsatisfiable(inner) => {
            if matches!(&**inner, LNode::Unsatisfiable(_)) {
                if let LNode::Unsatisfiable(nested) = &mut **inner {
                    let flat = take(nested);
                    **inner = flat;
                    changed = true;
                }
            }
        }
        _ => {}
    }
    changed
}

// ---------------------------------------------------------------------------
// BIND liveness
// ---------------------------------------------------------------------------

fn prune_unused_binds(query: &mut LQuery, trace: &mut RewriteTrace) -> bool {
    let mut used = HashSet::new();
    match &query.form {
        LForm::Select(sel) | LForm::Construct(_, sel) => collect_select_uses(sel, &mut used),
        LForm::Ask(node) => collect_node_uses(node, &mut used),
    }
    for (node, _) in &query.exists {
        collect_node_uses(node, &mut used);
    }
    let mut changed = false;
    {
        let mut roots: Vec<&mut LNode> = Vec::new();
        match &mut query.form {
            LForm::Select(sel) => roots.push(&mut sel.root),
            LForm::Ask(node) => roots.push(node),
            LForm::Construct(_, sel) => roots.push(&mut sel.root),
        }
        for (node, _) in &mut query.exists {
            roots.push(node);
        }
        for root in roots {
            changed |= prune_binds_in(root, &used);
        }
    }
    if changed {
        trace.note("prune-unused-bind");
    }
    changed
}

fn prune_binds_in(node: &mut LNode, used: &HashSet<usize>) -> bool {
    match node {
        LNode::Join(children) => {
            let mut changed = false;
            let before = children.len();
            children.retain(|c| !matches!(c, LNode::Extend(slot, _) if !used.contains(slot)));
            if children.len() != before {
                changed = true;
            }
            for c in children.iter_mut() {
                changed |= prune_binds_in(c, used);
            }
            if children.len() == 1 {
                let only = children.pop().expect("single child");
                *node = only;
                changed = true;
            } else if children.is_empty() {
                *node = LNode::Bgp(Vec::new());
                changed = true;
            }
            changed
        }
        LNode::Extend(slot, _) if !used.contains(slot) => {
            *node = LNode::Bgp(Vec::new());
            true
        }
        LNode::Filter { inner, .. } => prune_binds_in(inner, used),
        LNode::Union(a, b) | LNode::Optional(a, b) => {
            let ca = prune_binds_in(a, used);
            let cb = prune_binds_in(b, used);
            ca | cb
        }
        LNode::Minus(inner) | LNode::Unsatisfiable(inner) => prune_binds_in(inner, used),
        LNode::SubSelect(sel) => prune_binds_in(&mut sel.root, used),
        _ => false,
    }
}

fn collect_select_uses(sel: &LSelect, used: &mut HashSet<usize>) {
    for p in &sel.projection {
        used.insert(p.slot);
        if let Some(e) = &p.expr {
            collect_expr_uses(e, used);
        }
    }
    for a in &sel.aggregates {
        match a {
            CAggregate::CountAll => {}
            CAggregate::Count { expr, .. }
            | CAggregate::Sum(expr)
            | CAggregate::Avg(expr)
            | CAggregate::Min(expr)
            | CAggregate::Max(expr) => collect_expr_uses(expr, used),
        }
    }
    used.extend(sel.group_slots.iter().copied());
    for e in &sel.having {
        collect_expr_uses(e, used);
    }
    for (e, _) in &sel.order_by {
        collect_expr_uses(e, used);
    }
    collect_node_uses(&sel.root, used);
}

fn collect_node_uses(node: &LNode, used: &mut HashSet<usize>) {
    match node {
        LNode::Bgp(tps) => {
            for t in tps {
                used.extend(t.var_slots());
            }
        }
        LNode::Path(p) => {
            if let CPos::Var(s) = &p.s {
                used.insert(*s);
            }
            if let CPos::Var(s) = &p.o {
                used.insert(*s);
            }
        }
        LNode::Join(children) => {
            for c in children {
                collect_node_uses(c, used);
            }
        }
        LNode::Filter { exprs, inner, pins } => {
            for e in exprs {
                collect_expr_uses(e, used);
            }
            for p in pins {
                used.insert(p.slot);
            }
            collect_node_uses(inner, used);
        }
        LNode::Union(a, b) | LNode::Optional(a, b) => {
            collect_node_uses(a, used);
            collect_node_uses(b, used);
        }
        LNode::SubSelect(sel) => collect_select_uses(sel, used),
        LNode::Values { slots, .. } => used.extend(slots.iter().copied()),
        // The defined slot is NOT a use: an Extend only stays alive when
        // some other site references its output.
        LNode::Extend(_, expr) => collect_expr_uses(expr, used),
        LNode::Minus(inner) | LNode::Unsatisfiable(inner) => collect_node_uses(inner, used),
    }
}

fn collect_expr_uses(expr: &CExpr, used: &mut HashSet<usize>) {
    match expr {
        CExpr::Var(s) | CExpr::KindCheck(s, _) => {
            used.insert(*s);
        }
        CExpr::SlotEqConst(s, _, fallback) => {
            used.insert(*s);
            collect_expr_uses(fallback, used);
        }
        CExpr::Or(a, b) | CExpr::And(a, b) | CExpr::Compare(_, a, b) | CExpr::Arith(_, a, b) => {
            collect_expr_uses(a, used);
            collect_expr_uses(b, used);
        }
        CExpr::Not(a) | CExpr::Neg(a) => collect_expr_uses(a, used),
        CExpr::Call(_, args) => {
            for a in args {
                collect_expr_uses(a, used);
            }
        }
        CExpr::Const(_) | CExpr::Agg(_) | CExpr::ExistsRef(_) => {}
    }
}
