//! SPARQL engine errors.

use std::fmt;

/// Errors raised while parsing, planning, or evaluating SPARQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Lexical or grammatical error, with position information.
    Parse(String),
    /// The query is well-formed but uses something outside the supported
    /// subset, or is semantically inconsistent (e.g. projecting a variable
    /// that GROUP BY removed).
    Unsupported(String),
    /// Evaluation-time error (e.g. malformed regex in FILTER).
    Eval(String),
    /// Error from the underlying quad store.
    Store(quadstore::StoreError),
    /// Execution exceeded a configured [`crate::ExecLimits`] bound (row
    /// budget, memory budget, or deadline) and was aborted.
    ResourceExhausted(String),
    /// Execution was cancelled through a [`crate::CancelToken`].
    Cancelled,
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            SparqlError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            SparqlError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            SparqlError::Store(e) => write!(f, "store error: {e}"),
            SparqlError::ResourceExhausted(msg) => {
                write!(f, "resource limit exhausted: {msg}")
            }
            SparqlError::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for SparqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparqlError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<quadstore::StoreError> for SparqlError {
    fn from(e: quadstore::StoreError) -> Self {
        SparqlError::Store(e)
    }
}
