//! Compiled expressions and their evaluation.
//!
//! Expressions are compiled once per query execution: variables become
//! binding slots and constants that exist in the store dictionary are
//! pre-resolved to IDs so the common filters (`?t = "#webseries"`,
//! `isLiteral(?v)`, `isIRI(?y)`) evaluate without materialising terms.

use rdf_model::vocab::xsd;
use rdf_model::{Literal, Term};

use crate::ast::{ArithOp, CompareOp, Function};

/// A runtime value produced by expression evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A double.
    Float(f64),
    /// A plain string.
    Str(String),
    /// Any other RDF term (IRI, blank node, non-string literal).
    Term(Term),
}

impl Value {
    /// Builds a value from an RDF term, unwrapping numerics, booleans and
    /// plain strings into native variants.
    pub fn from_term(term: &Term) -> Value {
        if let Term::Literal(lit) = term {
            if let Some(b) = lit.as_bool() {
                return Value::Bool(b);
            }
            if let Some(i) = lit.as_i64() {
                return Value::Int(i);
            }
            if let Some(f) = lit.as_f64() {
                return Value::Float(f);
            }
            if lit.effective_datatype() == xsd::STRING {
                return Value::Str(lit.lexical().to_string());
            }
        }
        Value::Term(term.clone())
    }

    /// Converts back into an RDF term (for projected expression columns).
    pub fn into_term(self) -> Term {
        match self {
            Value::Bool(b) => Term::Literal(Literal::boolean(b)),
            Value::Int(i) => Term::Literal(Literal::integer(i)),
            Value::Float(f) => Term::Literal(Literal::double(f)),
            Value::Str(s) => Term::Literal(Literal::string(s)),
            Value::Term(t) => t,
        }
    }

    /// The SPARQL effective boolean value; `None` when undefined.
    pub fn ebv(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0 && !f.is_nan()),
            Value::Str(s) => Some(!s.is_empty()),
            Value::Term(Term::Literal(lit)) => Some(!lit.lexical().is_empty()),
            Value::Term(_) => None,
        }
    }

    /// Numeric interpretation, if any.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Term(Term::Literal(lit)) => lit.as_f64(),
            _ => None,
        }
    }

    /// The `STR()` string form.
    pub fn str_value(&self) -> String {
        match self {
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Str(s) => s.clone(),
            Value::Term(t) => t.str_value().to_string(),
        }
    }

    /// SPARQL `=` semantics over the supported value space: numeric
    /// comparison when both sides are numeric, term equality for two terms,
    /// string comparison otherwise.
    pub fn sparql_eq(&self, other: &Value) -> bool {
        if let (Some(a), Some(b)) = (self.as_number(), other.as_number()) {
            return a == b;
        }
        match (self, other) {
            (Value::Term(a), Value::Term(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => self.str_value() == other.str_value(),
        }
    }

    /// Ordering used by comparisons and ORDER BY: numeric if both numeric,
    /// else lexicographic on string form.
    pub fn sparql_cmp(&self, other: &Value) -> std::cmp::Ordering {
        if let (Some(a), Some(b)) = (self.as_number(), other.as_number()) {
            return a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal);
        }
        self.str_value().cmp(&other.str_value())
    }
}

/// A compiled expression; `Var` holds a binding slot.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// A variable slot reference.
    Var(usize),
    /// A pre-evaluated constant.
    Const(Value),
    /// Fast path: `isLiteral(?v)` / `isIRI(?v)` / `isBlank(?v)`.
    KindCheck(usize, TermKind),
    /// Fast path: `?v = <const>` where the constant resolves to a store ID
    /// (`None` means the constant is absent from the store — always false
    /// unless compared against a computed value, handled by fallback).
    SlotEqConst(usize, Option<u64>, Box<CExpr>),
    /// `a || b`.
    Or(Box<CExpr>, Box<CExpr>),
    /// `a && b`.
    And(Box<CExpr>, Box<CExpr>),
    /// `!a`.
    Not(Box<CExpr>),
    /// Comparison.
    Compare(CompareOp, Box<CExpr>, Box<CExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<CExpr>, Box<CExpr>),
    /// Unary minus.
    Neg(Box<CExpr>),
    /// Built-in call.
    Call(Function, Vec<CExpr>),
    /// Reference to an aggregate accumulator (projection of grouped
    /// queries); index into the query's aggregate list.
    Agg(usize),
    /// Reference to a compiled `EXISTS { ... }` pattern (index into the
    /// query's exists-node table; the environment evaluates it against
    /// the current row).
    ExistsRef(usize),
}

/// Term kind, for the `isLiteral`/`isIRI`/`isBlank` fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermKind {
    /// IRIs.
    Iri,
    /// Blank nodes.
    Blank,
    /// Literals.
    Literal,
}

impl TermKind {
    /// The kind of a term.
    pub fn of(term: &Term) -> TermKind {
        match term {
            Term::Iri(_) => TermKind::Iri,
            Term::Blank(_) => TermKind::Blank,
            Term::Literal(_) => TermKind::Literal,
        }
    }
}

/// Evaluation environment handed to compiled expressions.
pub trait ExprEnv {
    /// The term bound to a slot, if any.
    fn term_of_slot(&self, slot: usize) -> Option<Term>;
    /// The raw ID bound to a slot, if any.
    fn id_of_slot(&self, slot: usize) -> Option<u64>;
    /// Kind of the term bound to a slot (cheap, no clone).
    fn kind_of_slot(&self, slot: usize) -> Option<TermKind>;
    /// Value of an aggregate accumulator (grouped queries only).
    fn aggregate_value(&self, index: usize) -> Option<Value>;
    /// Whether the referenced `EXISTS` pattern matches the current row.
    fn exists(&self, index: usize) -> Option<bool>;
}

impl CExpr {
    /// Collects every binding slot this expression reads into `slots`
    /// (duplicates possible; dedup is the caller's concern). Returns `true`
    /// if the expression references an `EXISTS` pattern, whose inner node
    /// may read arbitrary slots beyond the ones collected here — callers
    /// doing liveness analysis must then treat every slot as read.
    pub fn collect_slots(&self, slots: &mut Vec<usize>) -> bool {
        match self {
            CExpr::Var(slot) => {
                slots.push(*slot);
                false
            }
            CExpr::Const(_) | CExpr::Agg(_) => false,
            CExpr::KindCheck(slot, _) => {
                slots.push(*slot);
                false
            }
            CExpr::SlotEqConst(slot, _, fallback) => {
                slots.push(*slot);
                fallback.collect_slots(slots)
            }
            CExpr::Or(a, b)
            | CExpr::And(a, b)
            | CExpr::Compare(_, a, b)
            | CExpr::Arith(_, a, b) => {
                let ea = a.collect_slots(slots);
                let eb = b.collect_slots(slots);
                ea | eb
            }
            CExpr::Not(e) | CExpr::Neg(e) => e.collect_slots(slots),
            CExpr::Call(_, args) => {
                let mut saw = false;
                for a in args {
                    saw |= a.collect_slots(slots);
                }
                saw
            }
            CExpr::ExistsRef(_) => true,
        }
    }

    /// Evaluates to a value; `None` is SPARQL's "error" (unbound variable,
    /// type error), which filters treat as false.
    pub fn eval(&self, env: &dyn ExprEnv) -> Option<Value> {
        match self {
            CExpr::Var(slot) => env.term_of_slot(*slot).map(|t| Value::from_term(&t)),
            CExpr::Const(v) => Some(v.clone()),
            CExpr::KindCheck(slot, kind) => {
                Some(Value::Bool(env.kind_of_slot(*slot)? == *kind))
            }
            CExpr::SlotEqConst(slot, id, fallback) => {
                let bound = env.id_of_slot(*slot)?;
                match id {
                    Some(cid) if bound & crate::exec::COMPUTED_BIT == 0 => {
                        Some(Value::Bool(bound == *cid))
                    }
                    // Constant absent from the dictionary, or the slot holds
                    // a computed value: fall back to general comparison.
                    _ => fallback.eval(env),
                }
            }
            CExpr::Or(a, b) => {
                let av = a.eval(env).and_then(|v| v.ebv());
                let bv = b.eval(env).and_then(|v| v.ebv());
                match (av, bv) {
                    (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                    (Some(false), Some(false)) => Some(Value::Bool(false)),
                    _ => None,
                }
            }
            CExpr::And(a, b) => {
                let av = a.eval(env).and_then(|v| v.ebv());
                let bv = b.eval(env).and_then(|v| v.ebv());
                match (av, bv) {
                    (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                    (Some(true), Some(true)) => Some(Value::Bool(true)),
                    _ => None,
                }
            }
            CExpr::Not(a) => a.eval(env)?.ebv().map(|b| Value::Bool(!b)),
            CExpr::Compare(op, a, b) => {
                let av = a.eval(env)?;
                let bv = b.eval(env)?;
                let result = match op {
                    CompareOp::Eq => av.sparql_eq(&bv),
                    CompareOp::Ne => !av.sparql_eq(&bv),
                    CompareOp::Lt => av.sparql_cmp(&bv) == std::cmp::Ordering::Less,
                    CompareOp::Le => av.sparql_cmp(&bv) != std::cmp::Ordering::Greater,
                    CompareOp::Gt => av.sparql_cmp(&bv) == std::cmp::Ordering::Greater,
                    CompareOp::Ge => av.sparql_cmp(&bv) != std::cmp::Ordering::Less,
                };
                Some(Value::Bool(result))
            }
            CExpr::Arith(op, a, b) => {
                let av = a.eval(env)?;
                let bv = b.eval(env)?;
                // Integer arithmetic when both sides are ints (except /).
                if let (Value::Int(x), Value::Int(y)) = (&av, &bv) {
                    match op {
                        ArithOp::Add => return Some(Value::Int(x.wrapping_add(*y))),
                        ArithOp::Sub => return Some(Value::Int(x.wrapping_sub(*y))),
                        ArithOp::Mul => return Some(Value::Int(x.wrapping_mul(*y))),
                        ArithOp::Div => {}
                    }
                }
                let x = av.as_number()?;
                let y = bv.as_number()?;
                Some(Value::Float(match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            return None;
                        }
                        x / y
                    }
                }))
            }
            CExpr::Neg(a) => {
                let v = a.eval(env)?;
                match v {
                    Value::Int(i) => Some(Value::Int(-i)),
                    other => Some(Value::Float(-other.as_number()?)),
                }
            }
            CExpr::Call(func, args) => eval_call(*func, args, env),
            CExpr::Agg(i) => env.aggregate_value(*i),
            CExpr::ExistsRef(i) => env.exists(*i).map(Value::Bool),
        }
    }

    /// Evaluates as a filter condition: errors count as `false`.
    pub fn eval_filter(&self, env: &dyn ExprEnv) -> bool {
        self.eval(env).and_then(|v| v.ebv()).unwrap_or(false)
    }
}

fn eval_call(func: Function, args: &[CExpr], env: &dyn ExprEnv) -> Option<Value> {
    match func {
        Function::Bound => {
            // BOUND only accepts a variable argument.
            match &args[0] {
                CExpr::Var(slot) => Some(Value::Bool(env.id_of_slot(*slot).is_some())),
                _ => None,
            }
        }
        Function::IsLiteral | Function::IsIri | Function::IsBlank => {
            let kind = match args[0].eval(env)? {
                Value::Term(t) => TermKind::of(&t),
                Value::Str(_) | Value::Bool(_) | Value::Int(_) | Value::Float(_) => {
                    TermKind::Literal
                }
            };
            let expected = match func {
                Function::IsLiteral => TermKind::Literal,
                Function::IsIri => TermKind::Iri,
                _ => TermKind::Blank,
            };
            Some(Value::Bool(kind == expected))
        }
        Function::Str => Some(Value::Str(args[0].eval(env)?.str_value())),
        Function::Lang => match args[0].eval(env)? {
            Value::Term(Term::Literal(lit)) => {
                Some(Value::Str(lit.lang().unwrap_or("").to_string()))
            }
            Value::Str(_) | Value::Bool(_) | Value::Int(_) | Value::Float(_) => {
                Some(Value::Str(String::new()))
            }
            _ => None,
        },
        Function::Datatype => match args[0].eval(env)? {
            Value::Term(Term::Literal(lit)) => {
                Some(Value::Term(Term::iri(lit.effective_datatype())))
            }
            Value::Str(_) => Some(Value::Term(Term::iri(xsd::STRING))),
            Value::Bool(_) => Some(Value::Term(Term::iri(xsd::BOOLEAN))),
            Value::Int(_) => Some(Value::Term(Term::iri(xsd::INTEGER))),
            Value::Float(_) => Some(Value::Term(Term::iri(xsd::DOUBLE))),
            _ => None,
        },
        Function::Concat => {
            let mut out = String::new();
            for arg in args {
                out.push_str(&arg.eval(env)?.str_value());
            }
            Some(Value::Str(out))
        }
        Function::StrStarts => {
            let a = args[0].eval(env)?.str_value();
            let b = args[1].eval(env)?.str_value();
            Some(Value::Bool(a.starts_with(&b)))
        }
        Function::StrEnds => {
            let a = args[0].eval(env)?.str_value();
            let b = args[1].eval(env)?.str_value();
            Some(Value::Bool(a.ends_with(&b)))
        }
        Function::Contains => {
            let a = args[0].eval(env)?.str_value();
            let b = args[1].eval(env)?.str_value();
            Some(Value::Bool(a.contains(&b)))
        }
        Function::StrLen => Some(Value::Int(
            args[0].eval(env)?.str_value().chars().count() as i64,
        )),
        Function::Ucase => Some(Value::Str(args[0].eval(env)?.str_value().to_uppercase())),
        Function::Lcase => Some(Value::Str(args[0].eval(env)?.str_value().to_lowercase())),
        Function::Abs => {
            let v = args[0].eval(env)?;
            match v {
                Value::Int(i) => Some(Value::Int(i.abs())),
                other => Some(Value::Float(other.as_number()?.abs())),
            }
        }
        Function::Regex => {
            let text = args[0].eval(env)?.str_value();
            let pattern = args[1].eval(env)?.str_value();
            Some(Value::Bool(regex_lite_match(&text, &pattern)))
        }
    }
}

/// A deliberately small regex dialect for `REGEX`: supports `^` / `$`
/// anchors and literal text in between (plus `.` as any-char). This covers
/// the tag/keyword filters used in social-network workloads without pulling
/// in a regex dependency.
pub fn regex_lite_match(text: &str, pattern: &str) -> bool {
    let (anchored_start, rest) = match pattern.strip_prefix('^') {
        Some(r) => (true, r),
        None => (false, pattern),
    };
    let (anchored_end, body) = match rest.strip_suffix('$') {
        Some(r) => (true, r),
        None => (false, rest),
    };
    let matches_at = |start: usize| -> bool {
        let tail = &text[start..];
        let mut t = tail.chars();
        for pc in body.chars() {
            match t.next() {
                Some(tc) if pc == '.' || pc == tc => {}
                _ => return false,
            }
        }
        !anchored_end || t.as_str().is_empty() || {
            // end anchor: consumed exactly to the end
            let consumed: usize = body.chars().count();
            tail.chars().count() == consumed
        }
    };
    if anchored_start {
        matches_at(0)
    } else if body.is_empty() {
        true
    } else {
        (0..=text.len())
            .filter(|i| text.is_char_boundary(*i))
            .any(matches_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct TestEnv {
        terms: HashMap<usize, Term>,
    }

    impl ExprEnv for TestEnv {
        fn term_of_slot(&self, slot: usize) -> Option<Term> {
            self.terms.get(&slot).cloned()
        }
        fn id_of_slot(&self, slot: usize) -> Option<u64> {
            self.terms.get(&slot).map(|_| slot as u64 + 100)
        }
        fn kind_of_slot(&self, slot: usize) -> Option<TermKind> {
            self.terms.get(&slot).map(TermKind::of)
        }
        fn aggregate_value(&self, _: usize) -> Option<Value> {
            None
        }
        fn exists(&self, _: usize) -> Option<bool> {
            None
        }
    }

    fn env() -> TestEnv {
        let mut terms = HashMap::new();
        terms.insert(0, Term::string("#webseries"));
        terms.insert(1, Term::iri("http://pg/v1"));
        terms.insert(2, Term::int(23));
        TestEnv { terms }
    }

    #[test]
    fn value_from_term_unwraps() {
        assert_eq!(Value::from_term(&Term::int(5)), Value::Int(5));
        assert_eq!(Value::from_term(&Term::string("x")), Value::Str("x".into()));
        assert_eq!(
            Value::from_term(&Term::Literal(Literal::boolean(true))),
            Value::Bool(true)
        );
        assert!(matches!(Value::from_term(&Term::iri("http://x")), Value::Term(_)));
    }

    #[test]
    fn sparql_eq_numeric_across_types() {
        assert!(Value::Int(23).sparql_eq(&Value::Float(23.0)));
        assert!(!Value::Int(23).sparql_eq(&Value::Int(24)));
        assert!(Value::Str("a".into()).sparql_eq(&Value::Str("a".into())));
    }

    #[test]
    fn kind_checks() {
        let e = env();
        assert!(CExpr::KindCheck(0, TermKind::Literal).eval_filter(&e));
        assert!(!CExpr::KindCheck(1, TermKind::Literal).eval_filter(&e));
        assert!(CExpr::KindCheck(1, TermKind::Iri).eval_filter(&e));
        // unbound slot -> error -> false
        assert!(!CExpr::KindCheck(9, TermKind::Iri).eval_filter(&e));
    }

    #[test]
    fn str_and_concat() {
        let e = env();
        let expr = CExpr::Compare(
            CompareOp::Eq,
            Box::new(CExpr::Call(Function::Str, vec![CExpr::Var(0)])),
            Box::new(CExpr::Call(
                Function::Concat,
                vec![
                    CExpr::Const(Value::Str("#".into())),
                    CExpr::Const(Value::Str("webseries".into())),
                ],
            )),
        );
        assert!(expr.eval_filter(&e));
    }

    #[test]
    fn arithmetic_int_and_float() {
        let e = env();
        let expr = CExpr::Arith(
            ArithOp::Add,
            Box::new(CExpr::Var(2)),
            Box::new(CExpr::Const(Value::Int(2))),
        );
        assert_eq!(expr.eval(&e), Some(Value::Int(25)));
        let div = CExpr::Arith(
            ArithOp::Div,
            Box::new(CExpr::Const(Value::Int(7))),
            Box::new(CExpr::Const(Value::Int(2))),
        );
        assert_eq!(div.eval(&e), Some(Value::Float(3.5)));
        let div0 = CExpr::Arith(
            ArithOp::Div,
            Box::new(CExpr::Const(Value::Int(7))),
            Box::new(CExpr::Const(Value::Int(0))),
        );
        assert_eq!(div0.eval(&e), None);
    }

    #[test]
    fn boolean_logic_with_errors() {
        let e = env();
        let err = CExpr::Var(9); // unbound
        let truth = CExpr::Const(Value::Bool(true));
        let falsity = CExpr::Const(Value::Bool(false));
        // error || true = true
        assert!(CExpr::Or(Box::new(err.clone()), Box::new(truth.clone())).eval_filter(&e));
        // error && false = false
        assert_eq!(
            CExpr::And(Box::new(err.clone()), Box::new(falsity)).eval(&e),
            Some(Value::Bool(false))
        );
        // error && true = error -> filter false
        assert!(!CExpr::And(Box::new(err), Box::new(truth)).eval_filter(&e));
    }

    #[test]
    fn string_functions() {
        let e = env();
        let starts = CExpr::Call(
            Function::StrStarts,
            vec![CExpr::Var(0), CExpr::Const(Value::Str("#web".into()))],
        );
        assert!(starts.eval_filter(&e));
        let len = CExpr::Call(Function::StrLen, vec![CExpr::Var(0)]);
        assert_eq!(len.eval(&e), Some(Value::Int(10)));
        let up = CExpr::Call(Function::Ucase, vec![CExpr::Const(Value::Str("ab".into()))]);
        assert_eq!(up.eval(&e), Some(Value::Str("AB".into())));
    }

    #[test]
    fn bound_function() {
        let e = env();
        assert!(CExpr::Call(Function::Bound, vec![CExpr::Var(0)]).eval_filter(&e));
        assert!(!CExpr::Call(Function::Bound, vec![CExpr::Var(9)]).eval_filter(&e));
    }

    #[test]
    fn regex_lite() {
        assert!(regex_lite_match("#webseries", "web"));
        assert!(regex_lite_match("#webseries", "^#web"));
        assert!(!regex_lite_match("#webseries", "^web"));
        assert!(regex_lite_match("#webseries", "series$"));
        assert!(!regex_lite_match("#webseries", "^series$"));
        assert!(regex_lite_match("abc", "a.c"));
        assert!(regex_lite_match("anything", ""));
    }

    #[test]
    fn value_ordering() {
        assert_eq!(
            Value::Int(2).sparql_cmp(&Value::Float(10.0)),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            Value::Str("b".into()).sparql_cmp(&Value::Str("a".into())),
            std::cmp::Ordering::Greater
        );
    }

    #[test]
    fn datatype_function() {
        let e = env();
        let dt = CExpr::Call(Function::Datatype, vec![CExpr::Var(2)]);
        // 23 unwraps to Value::Int, so datatype reports xsd:integer.
        assert_eq!(dt.eval(&e), Some(Value::Term(Term::iri(xsd::INTEGER))));
    }
}
