//! Property-path evaluation for closure operators (`*`, `+`, `?`).
//!
//! Sequences and alternatives outside closures are rewritten into joins
//! and unions at compile time; this module handles the genuinely recursive
//! part with breadth-first search over the dataset, producing *distinct*
//! node pairs as SPARQL 1.1 requires for `ZeroOrMorePath`/`OneOrMorePath`.
//!
//! The paper notes (§5.1/§6) that SPARQL 1.1 property paths cannot carry
//! length limits or path variables; the procedural alternative lives in
//! `propertygraph::traversal`.

use std::collections::HashSet;

use quadstore::{DatasetView, GraphConstraint, QuadPattern};
use rdf_model::TermId;

use crate::plan::CPath;

/// Resource hook threaded through closure-path search. Each newly visited
/// search node reports here; returning `false` stops the expansion early
/// (the caller's sticky exhaustion state surfaces the abort as an error).
pub trait PathBudget {
    /// Charges `nodes` newly visited search nodes. `true` = keep going.
    fn path_nodes(&self, nodes: u64) -> bool;
}

/// A [`PathBudget`] that never stops the search.
pub struct Unbounded;

impl PathBudget for Unbounded {
    fn path_nodes(&self, _nodes: u64) -> bool {
        true
    }
}

/// Evaluates a compiled path between optionally-bound endpoints, returning
/// `(subject, object)` ID pairs.
///
/// * both bound → zero or one pair (a reachability test);
/// * subject bound → forward evaluation;
/// * object bound → backward evaluation (the path is inverted);
/// * neither bound → evaluation from every candidate start node (all
///   distinct subjects/objects touched by the path's predicates).
pub fn eval_path_pairs(
    view: &DatasetView,
    path: &CPath,
    graph: GraphConstraint,
    s: Option<u64>,
    o: Option<u64>,
) -> Vec<(u64, u64)> {
    eval_path_pairs_with(view, path, graph, s, o, &Unbounded)
}

/// [`eval_path_pairs`] under a [`PathBudget`]: the search observes the
/// memory budget and the periodic deadline/cancel check of the executor
/// while it runs, instead of only after it returns.
pub fn eval_path_pairs_with(
    view: &DatasetView,
    path: &CPath,
    graph: GraphConstraint,
    s: Option<u64>,
    o: Option<u64>,
    budget: &dyn PathBudget,
) -> Vec<(u64, u64)> {
    match (s, o) {
        (Some(s), Some(o)) => {
            if reaches(view, path, graph, s, o, budget) {
                vec![(s, o)]
            } else {
                Vec::new()
            }
        }
        (Some(s), None) => forward_with(view, path, graph, s, budget)
            .into_iter()
            .map(|o| (s, o))
            .collect(),
        (None, Some(o)) => backward_with(view, path, graph, o, budget)
            .into_iter()
            .map(|s| (s, o))
            .collect(),
        (None, None) => {
            let mut out = Vec::new();
            for start in candidate_starts(view, path, graph, budget) {
                for end in forward_with(view, path, graph, start, budget) {
                    out.push((start, end));
                }
                if !budget.path_nodes(0) {
                    break;
                }
            }
            out
        }
    }
}

/// All nodes reachable from `start` via `path` (distinct).
pub fn forward(
    view: &DatasetView,
    path: &CPath,
    graph: GraphConstraint,
    start: u64,
) -> Vec<u64> {
    forward_with(view, path, graph, start, &Unbounded)
}

/// [`forward`] under a [`PathBudget`].
pub fn forward_with(
    view: &DatasetView,
    path: &CPath,
    graph: GraphConstraint,
    start: u64,
    budget: &dyn PathBudget,
) -> Vec<u64> {
    match path {
        CPath::Iri(_, id) => match id {
            Some(pid) => scan_objects(view, graph, Some(start), pid.0),
            None => Vec::new(),
        },
        CPath::Inverse(inner) => backward_with(view, inner, graph, start, budget),
        CPath::Sequence(a, b) => {
            let mut out = HashSet::new();
            for mid in forward_with(view, a, graph, start, budget) {
                for end in forward_with(view, b, graph, mid, budget) {
                    if out.insert(end) && !budget.path_nodes(1) {
                        return out.into_iter().collect();
                    }
                }
            }
            out.into_iter().collect()
        }
        CPath::Alternative(a, b) => {
            let mut out: HashSet<u64> =
                forward_with(view, a, graph, start, budget).into_iter().collect();
            out.extend(forward_with(view, b, graph, start, budget));
            out.into_iter().collect()
        }
        CPath::ZeroOrOne(inner) => {
            let mut out: HashSet<u64> =
                forward_with(view, inner, graph, start, budget).into_iter().collect();
            out.insert(start);
            out.into_iter().collect()
        }
        CPath::ZeroOrMore(inner) => {
            bfs(view, inner, graph, start, true, Direction::Forward, budget)
        }
        CPath::OneOrMore(inner) => {
            bfs(view, inner, graph, start, false, Direction::Forward, budget)
        }
    }
}

/// All nodes that reach `end` via `path` (distinct).
pub fn backward(
    view: &DatasetView,
    path: &CPath,
    graph: GraphConstraint,
    end: u64,
) -> Vec<u64> {
    backward_with(view, path, graph, end, &Unbounded)
}

/// [`backward`] under a [`PathBudget`].
pub fn backward_with(
    view: &DatasetView,
    path: &CPath,
    graph: GraphConstraint,
    end: u64,
    budget: &dyn PathBudget,
) -> Vec<u64> {
    match path {
        CPath::Iri(_, id) => match id {
            Some(pid) => scan_subjects(view, graph, pid.0, Some(end)),
            None => Vec::new(),
        },
        CPath::Inverse(inner) => forward_with(view, inner, graph, end, budget),
        CPath::Sequence(a, b) => {
            let mut out = HashSet::new();
            for mid in backward_with(view, b, graph, end, budget) {
                for s in backward_with(view, a, graph, mid, budget) {
                    if out.insert(s) && !budget.path_nodes(1) {
                        return out.into_iter().collect();
                    }
                }
            }
            out.into_iter().collect()
        }
        CPath::Alternative(a, b) => {
            let mut out: HashSet<u64> =
                backward_with(view, a, graph, end, budget).into_iter().collect();
            out.extend(backward_with(view, b, graph, end, budget));
            out.into_iter().collect()
        }
        CPath::ZeroOrOne(inner) => {
            let mut out: HashSet<u64> =
                backward_with(view, inner, graph, end, budget).into_iter().collect();
            out.insert(end);
            out.into_iter().collect()
        }
        CPath::ZeroOrMore(inner) => {
            bfs(view, inner, graph, end, true, Direction::Backward, budget)
        }
        CPath::OneOrMore(inner) => {
            bfs(view, inner, graph, end, false, Direction::Backward, budget)
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Forward,
    Backward,
}

fn bfs(
    view: &DatasetView,
    inner: &CPath,
    graph: GraphConstraint,
    start: u64,
    include_start: bool,
    direction: Direction,
    budget: &dyn PathBudget,
) -> Vec<u64> {
    let mut visited: HashSet<u64> = HashSet::new();
    let mut frontier: Vec<u64> = vec![start];
    let mut result: HashSet<u64> = HashSet::new();
    if include_start {
        result.insert(start);
    }
    visited.insert(start);
    if !budget.path_nodes(1) {
        return result.into_iter().collect();
    }
    while let Some(node) = frontier.pop() {
        let nexts = match direction {
            Direction::Forward => forward_with(view, inner, graph, node, budget),
            Direction::Backward => backward_with(view, inner, graph, node, budget),
        };
        for next in nexts {
            result.insert(next);
            if visited.insert(next) {
                frontier.push(next);
                // The frontier, visited, and result sets all retain this
                // node; a failed charge drains the search immediately.
                if !budget.path_nodes(1) {
                    return result.into_iter().collect();
                }
            }
        }
    }
    result.into_iter().collect()
}

fn reaches(
    view: &DatasetView,
    path: &CPath,
    graph: GraphConstraint,
    s: u64,
    o: u64,
    budget: &dyn PathBudget,
) -> bool {
    forward_with(view, path, graph, s, budget).contains(&o)
}

fn scan_objects(
    view: &DatasetView,
    graph: GraphConstraint,
    s: Option<u64>,
    p: u64,
) -> Vec<u64> {
    let pattern = QuadPattern {
        s: s.map(TermId),
        p: Some(TermId(p)),
        o: None,
        g: graph,
    };
    view.scan(pattern).map(|q| q[quadstore::ids::O]).collect()
}

fn scan_subjects(
    view: &DatasetView,
    graph: GraphConstraint,
    p: u64,
    o: Option<u64>,
) -> Vec<u64> {
    let pattern = QuadPattern {
        s: None,
        p: Some(TermId(p)),
        o: o.map(TermId),
        g: graph,
    };
    view.scan(pattern).map(|q| q[quadstore::ids::S]).collect()
}

/// Candidate start nodes for a fully-unbound closure path: every distinct
/// subject or object of quads using any predicate mentioned in the path.
fn candidate_starts(
    view: &DatasetView,
    path: &CPath,
    graph: GraphConstraint,
    budget: &dyn PathBudget,
) -> Vec<u64> {
    let mut preds = Vec::new();
    collect_predicates(path, &mut preds);
    let mut nodes = HashSet::new();
    for pid in preds {
        let pattern = QuadPattern { s: None, p: Some(TermId(pid)), o: None, g: graph };
        for quad in view.scan(pattern) {
            let mut fresh = 0;
            fresh += u64::from(nodes.insert(quad[quadstore::ids::S]));
            fresh += u64::from(nodes.insert(quad[quadstore::ids::O]));
            if fresh > 0 && !budget.path_nodes(fresh) {
                return nodes.into_iter().collect();
            }
        }
    }
    nodes.into_iter().collect()
}

fn collect_predicates(path: &CPath, out: &mut Vec<u64>) {
    match path {
        CPath::Iri(_, Some(id)) => out.push(id.0),
        CPath::Iri(_, None) => {}
        CPath::Inverse(p) | CPath::ZeroOrMore(p) | CPath::OneOrMore(p) | CPath::ZeroOrOne(p) => {
            collect_predicates(p, out)
        }
        CPath::Sequence(a, b) | CPath::Alternative(a, b) => {
            collect_predicates(a, out);
            collect_predicates(b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadstore::Store;
    use rdf_model::{Quad, Term};

    /// Chain 1 -> 2 -> 3 -> 4 plus a cycle 4 -> 1.
    fn chain_store() -> Store {
        let store = Store::new();
        store.create_model("m").unwrap();
        let f = "http://pg/r/follows";
        let quads: Vec<Quad> = [(1u32, 2u32), (2, 3), (3, 4), (4, 1)]
            .iter()
            .map(|(a, b)| {
                Quad::triple(
                    Term::iri(format!("http://pg/v{a}")),
                    Term::iri(f),
                    Term::iri(format!("http://pg/v{b}")),
                )
                .unwrap()
            })
            .collect();
        store.bulk_load("m", &quads).unwrap();
        store
    }

    fn node_id(store: &Store, n: u32) -> u64 {
        store
            .term_id(&Term::iri(format!("http://pg/v{n}")))
            .unwrap()
            .0
    }

    fn follows_path(store: &Store) -> CPath {
        let term = Term::iri("http://pg/r/follows");
        let id = store.term_id(&term);
        CPath::Iri(term, id)
    }

    #[test]
    fn one_or_more_traverses_cycle_without_looping() {
        let store = chain_store();
        let view = store.dataset("m").unwrap();
        let path = CPath::OneOrMore(Box::new(follows_path(&store)));
        let start = node_id(&store, 1);
        let mut reached = forward(&view, &path, GraphConstraint::DefaultOnly, start);
        reached.sort_unstable();
        // 1+ reaches 2,3,4 and (via the cycle) 1 itself.
        assert_eq!(reached.len(), 4);
        assert!(reached.contains(&start));
    }

    #[test]
    fn zero_or_more_includes_start() {
        let store = Store::new();
        store.create_model("m").unwrap();
        store
            .bulk_load(
                "m",
                &[Quad::triple(
                    Term::iri("http://a"),
                    Term::iri("http://p"),
                    Term::iri("http://b"),
                )
                .unwrap()],
            )
            .unwrap();
        let view = store.dataset("m").unwrap();
        let term = Term::iri("http://p");
        let id = store.term_id(&term);
        let path = CPath::ZeroOrMore(Box::new(CPath::Iri(term, id)));
        let a = store.term_id(&Term::iri("http://a")).unwrap().0;
        let mut reached = forward(&view, &path, GraphConstraint::DefaultOnly, a);
        reached.sort_unstable();
        assert_eq!(reached.len(), 2); // a itself and b
        assert!(reached.contains(&a));
    }

    #[test]
    fn backward_matches_forward() {
        let store = chain_store();
        let view = store.dataset("m").unwrap();
        let path = CPath::OneOrMore(Box::new(follows_path(&store)));
        let end = node_id(&store, 3);
        let sources = backward(&view, &path, GraphConstraint::DefaultOnly, end);
        // Everyone reaches 3 in the cycle.
        assert_eq!(sources.len(), 4);
    }

    #[test]
    fn reachability_pair_test() {
        let store = chain_store();
        let view = store.dataset("m").unwrap();
        let path = CPath::OneOrMore(Box::new(follows_path(&store)));
        let s = node_id(&store, 1);
        let o = node_id(&store, 4);
        let pairs = eval_path_pairs(&view, &path, GraphConstraint::DefaultOnly, Some(s), Some(o));
        assert_eq!(pairs, vec![(s, o)]);
    }

    #[test]
    fn unbound_both_enumerates_all_pairs() {
        let store = chain_store();
        let view = store.dataset("m").unwrap();
        let path = CPath::OneOrMore(Box::new(follows_path(&store)));
        let pairs = eval_path_pairs(&view, &path, GraphConstraint::DefaultOnly, None, None);
        // Cycle of 4: every node reaches all 4 nodes -> 16 pairs.
        assert_eq!(pairs.len(), 16);
    }

    #[test]
    fn missing_predicate_yields_nothing() {
        let store = chain_store();
        let view = store.dataset("m").unwrap();
        let path = CPath::OneOrMore(Box::new(CPath::Iri(Term::iri("http://nowhere"), None)));
        assert!(forward(&view, &path, GraphConstraint::DefaultOnly, 1).is_empty());
    }

    #[test]
    fn zero_or_one() {
        let store = chain_store();
        let view = store.dataset("m").unwrap();
        let path = CPath::ZeroOrOne(Box::new(follows_path(&store)));
        let start = node_id(&store, 1);
        let mut reached = forward(&view, &path, GraphConstraint::DefaultOnly, start);
        reached.sort_unstable();
        assert_eq!(reached.len(), 2); // itself + direct successor
    }
}
