//! Cost-based physical planning of basic graph patterns.
//!
//! Two planners share one cost model and one emission path:
//!
//! * **Dynamic programming** (the default, up to [`DP_MAX_PATTERNS`]
//!   triples): subset-indexed enumeration of left-deep join orders, each
//!   step costed as the cheaper of an index nested-loop probe and a
//!   hash join over a full scan. The search prefers connected extensions
//!   (a triple sharing a variable with the planned prefix) whenever one
//!   exists, so cartesian products are only considered when unavoidable —
//!   the classic DPsize pruning.
//! * **Greedy** (fallback above the DP size cap, and the whole planner
//!   when cost-based optimization is disabled): the pre-CBO heuristic —
//!   joined-first, smallest per-probe fanout next — kept bit-identical so
//!   `--no-cbo` reproduces the old plans exactly.
//!
//! Cardinalities come from [`Estimator`]: index range estimates for
//! scans, and per-predicate distinct counts plus equi-depth object
//! histograms ([`quadstore::CboStats`]) for join fanouts, falling back to
//! the coarse index statistics when no predicate statistics apply.

use std::collections::HashSet;
use std::sync::Arc;

use quadstore::{CboStats, DatasetView, GraphConstraint};
use rdf_model::TermId;

use crate::plan::{CGraph, CPos, CTriple, ForcedJoin, Node, Step, Strategy};

/// Cost charged per index probe (binary search + pointer chasing) relative
/// to one sequential key visit; used in the NLJ-vs-hash decision.
pub(crate) const PROBE_COST: f64 = 20.0;

/// Largest BGP the dynamic-programming enumerator will take on; beyond
/// this the subset table (2^n entries) stops paying for itself and the
/// planner falls back to the greedy heuristic.
pub(crate) const DP_MAX_PATTERNS: usize = 10;

/// Index positions of a triple's variables that are bound upstream — the
/// join positions a probe will constrain.
pub(crate) fn join_positions(triple: &CTriple, bound: &HashSet<usize>) -> Vec<usize> {
    let mut positions = Vec::new();
    if let CPos::Var(s) = &triple.s {
        if bound.contains(s) {
            positions.push(quadstore::ids::S);
        }
    }
    if let CPos::Var(s) = &triple.p {
        if bound.contains(s) {
            positions.push(quadstore::ids::P);
        }
    }
    if let CPos::Var(s) = &triple.o {
        if bound.contains(s) {
            positions.push(quadstore::ids::O);
        }
    }
    if let CGraph::Var(s) = &triple.g {
        if bound.contains(s) {
            positions.push(quadstore::ids::G);
        }
    }
    positions
}

/// Cardinality estimator over a dataset view. With CBO enabled it holds
/// each member model's statistics snapshot ([`CboStats`], computed lazily
/// and pinned until DML drifts past the refresh threshold); without, the
/// statistics list is empty and every estimate degrades to the coarse
/// index-range numbers the greedy planner always used.
pub(crate) struct Estimator<'a> {
    view: &'a DatasetView,
    stats: Vec<Arc<CboStats>>,
}

impl<'a> Estimator<'a> {
    pub(crate) fn new(view: &'a DatasetView, use_cbo: bool) -> Estimator<'a> {
        let stats = if use_cbo {
            view.members().iter().map(|m| m.cbo_stats()).collect()
        } else {
            Vec::new()
        };
        Estimator { view, stats }
    }

    /// Estimated rows of the constants-only scan of a triple.
    pub(crate) fn scan_rows(&self, triple: &CTriple) -> usize {
        if triple.unsatisfiable() {
            0
        } else {
            self.view.estimate(&triple.const_pattern())
        }
    }

    /// Expected matches per probe when the given positions are bound by
    /// the join. Uses per-predicate distinct counts (and the object
    /// histogram when the object is a constant) when the pattern has a
    /// constant predicate and only subject/object join positions;
    /// otherwise the coarse per-index fanout.
    pub(crate) fn fanout(&self, triple: &CTriple, positions: &[usize]) -> f64 {
        let pattern = triple.const_pattern();
        let pid = match &triple.p {
            CPos::Const(_, Some(id)) => Some(id.0),
            _ => None,
        };
        let pure_so = positions
            .iter()
            .all(|&p| p == quadstore::ids::S || p == quadstore::ids::O);
        let Some(pid) = pid else {
            return self.view.stat_fanout(&pattern, positions);
        };
        if self.stats.is_empty() || positions.is_empty() || !pure_so {
            return self.view.stat_fanout(&pattern, positions);
        }
        let mut total = 0.0f64;
        for (member, stats) in self.view.members().iter().zip(&self.stats) {
            let est = member.estimate(&pattern) as f64;
            if est == 0.0 {
                continue;
            }
            let Some(ps) = stats.predicate(pid) else {
                // Predicate unknown to the statistics snapshot (added
                // since the last refresh): coarse estimate for this member.
                total += self.view.stat_fanout(&pattern, positions);
                continue;
            };
            let mut denom = 1.0f64;
            for &p in positions {
                denom *= if p == quadstore::ids::S {
                    ps.distinct_subjects.max(1) as f64
                } else {
                    ps.distinct_objects.max(1) as f64
                };
            }
            let mut per = (est / denom).max(1.0).min(est.max(1.0));
            // A constant object narrows a subject join below the predicate
            // average: the histogram knows that value's depth.
            if positions == [quadstore::ids::S] {
                if let CPos::Const(_, Some(oid)) = &triple.o {
                    let rows = ps.objects.estimate_eq(oid.0);
                    if rows > 0.0 {
                        per = per.min((rows / ps.distinct_subjects.max(1) as f64).max(1.0));
                    }
                }
            }
            total += per;
        }
        total.max(1.0)
    }
}

/// Plans one BGP: chooses a join order (DP or greedy) and emits the
/// executable step chain with per-step strategy, access path, and
/// estimated output cardinality.
pub(crate) struct BgpPlanner<'a> {
    pub(crate) view: &'a DatasetView,
    pub(crate) est: &'a Estimator<'a>,
    pub(crate) force_join: Option<ForcedJoin>,
    pub(crate) use_cbo: bool,
}

#[derive(Clone, Copy)]
struct Cand {
    cost: f64,
    card: f64,
    last: usize,
    prev: usize,
}

impl BgpPlanner<'_> {
    pub(crate) fn plan(&self, triples: Vec<CTriple>, bound: &mut HashSet<usize>) -> Option<Node> {
        if triples.is_empty() {
            return None;
        }
        let order = if self.use_cbo && triples.len() >= 2 && triples.len() <= DP_MAX_PATTERNS {
            self.dp_order(&triples, bound)
        } else {
            self.greedy_order(&triples, bound)
        };
        Some(Node::Steps(self.emit(triples, &order, bound)))
    }

    /// Exhaustive left-deep join ordering over the 2^n subset lattice.
    /// Deterministic: masks ascend, candidates ascend, and a new path must
    /// strictly beat the recorded one.
    fn dp_order(&self, triples: &[CTriple], outer: &HashSet<usize>) -> Vec<usize> {
        let n = triples.len();
        let slot_sets: Vec<HashSet<usize>> = triples
            .iter()
            .map(|t| t.var_slots().into_iter().collect())
            .collect();
        let full = (1usize << n) - 1;
        let mut table: Vec<Option<Cand>> = vec![None; 1usize << n];
        for mask in 0..full {
            let (base_cost, base_card) = if mask == 0 {
                (0.0, 1.0)
            } else {
                match &table[mask] {
                    Some(c) => (c.cost, c.card),
                    None => continue,
                }
            };
            let mut bset: HashSet<usize> = outer.clone();
            for (i, slots) in slot_sets.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    bset.extend(slots.iter().copied());
                }
            }
            let any_joined = (0..n).any(|i| {
                mask & (1 << i) == 0 && slot_sets[i].iter().any(|s| bset.contains(s))
            });
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    continue;
                }
                let joined = slot_sets[i].iter().any(|s| bset.contains(s));
                if any_joined && !joined {
                    continue;
                }
                let (step_cost, out_card) = self.step_cost(&triples[i], &bset, base_card);
                let cost = base_cost + step_cost;
                let next = mask | (1 << i);
                let better = match &table[next] {
                    None => true,
                    Some(c) => cost + 1e-9 < c.cost,
                };
                if better {
                    table[next] = Some(Cand { cost, card: out_card, last: i, prev: mask });
                }
            }
        }
        let mut order = vec![0usize; n];
        let mut mask = full;
        for slot in order.iter_mut().rev() {
            let c = table[mask].expect("connected extensions keep every subset reachable");
            *slot = c.last;
            mask = c.prev;
        }
        order
    }

    /// Cost and output cardinality of appending one triple to a prefix
    /// with cardinality `left_card` and bound set `bset`. Mirrors the
    /// formulas of [`Self::emit`] exactly so the DP's choices survive
    /// re-derivation at emission time.
    fn step_cost(&self, triple: &CTriple, bset: &HashSet<usize>, left_card: f64) -> (f64, f64) {
        let est_scan = self.est.scan_rows(triple) as f64;
        let positions = join_positions(triple, bset);
        if positions.is_empty() {
            (left_card * est_scan, left_card * est_scan)
        } else {
            let per_probe = self.est.fanout(triple, &positions);
            let nlj_cost = left_card * (PROBE_COST + per_probe);
            let hash_cost = 2.0 * est_scan + left_card;
            let cost = match self.force_join {
                Some(ForcedJoin::Nlj) => nlj_cost,
                Some(ForcedJoin::Hash) => hash_cost,
                None => nlj_cost.min(hash_cost),
            };
            (cost, (left_card * per_probe).max(1.0))
        }
    }

    /// The pre-CBO greedy ordering: joined-to-bound-set first, smallest
    /// per-probe fanout (or total estimate when unjoined) next. Replicates
    /// the historical selection loop — including its swap-remove
    /// tie-breaking — so plans without CBO are unchanged.
    fn greedy_order(&self, triples: &[CTriple], outer: &HashSet<usize>) -> Vec<usize> {
        let mut remaining: Vec<(usize, &CTriple)> = triples.iter().enumerate().collect();
        let mut bound = outer.clone();
        let mut order = Vec::with_capacity(triples.len());
        while !remaining.is_empty() {
            let mut best = 0usize;
            let mut best_key = (usize::MAX, usize::MAX);
            for (i, (_, t)) in remaining.iter().enumerate() {
                let shared = t.var_slots().iter().filter(|s| bound.contains(s)).count();
                let cost = if t.unsatisfiable() {
                    0.0
                } else if shared > 0 {
                    self.est.fanout(t, &join_positions(t, &bound))
                } else {
                    self.est.scan_rows(t) as f64
                };
                let rank = if shared > 0 || order.is_empty() { 0 } else { 1 };
                let key = (rank, (cost * 1024.0).min(usize::MAX as f64) as usize);
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            let (orig, t) = remaining.swap_remove(best);
            for v in t.var_slots() {
                bound.insert(v);
            }
            order.push(orig);
        }
        order
    }

    /// Emits the planned steps in the chosen order: per-step strategy
    /// (index NLJ vs hash join, or the forced override), access path for
    /// EXPLAIN, estimated scan and output cardinalities. Updates `bound`
    /// with every slot the chain binds.
    fn emit(&self, triples: Vec<CTriple>, order: &[usize], bound: &mut HashSet<usize>) -> Vec<Step> {
        let mut slots: Vec<Option<CTriple>> = triples.into_iter().map(Some).collect();
        let mut steps = Vec::with_capacity(order.len());
        let mut left_card: f64 = 1.0;
        for &idx in order {
            let triple = slots[idx].take().expect("each triple planned once");
            let est_scan = self.est.scan_rows(&triple);

            // Slots of this triple already bound upstream = join slots.
            let join_slots: Vec<usize> = {
                let mut seen = HashSet::new();
                triple
                    .var_slots()
                    .into_iter()
                    .filter(|s| bound.contains(s) && seen.insert(*s))
                    .collect()
            };

            let strategy;
            let out_card;
            if join_slots.is_empty() {
                strategy = Strategy::IndexNlj;
                out_card = left_card * est_scan as f64;
            } else {
                let positions = join_positions(&triple, bound);
                let per_probe = self.est.fanout(&triple, &positions);
                let nlj_cost = left_card * (PROBE_COST + per_probe);
                let hash_cost = 2.0 * est_scan as f64 + left_card;
                strategy = match self.force_join {
                    Some(ForcedJoin::Nlj) => Strategy::IndexNlj,
                    Some(ForcedJoin::Hash) => Strategy::HashJoin { join_slots },
                    None if nlj_cost <= hash_cost => Strategy::IndexNlj,
                    None => Strategy::HashJoin { join_slots },
                };
                out_card = (left_card * per_probe).max(1.0);
            }
            left_card = out_card;

            // What access path will the probe use? (For EXPLAIN.) At probe
            // time only the *join* slots are bound — reflect exactly those
            // in the pattern. The hash build side scans constants only.
            let access = {
                let mut probe = triple.const_pattern();
                if !matches!(strategy, Strategy::HashJoin { .. }) {
                    if let CPos::Var(v) = &triple.s {
                        if bound.contains(v) && probe.s.is_none() {
                            probe.s = Some(TermId(u64::MAX));
                        }
                    }
                    if let CPos::Var(v) = &triple.p {
                        if bound.contains(v) && probe.p.is_none() {
                            probe.p = Some(TermId(u64::MAX));
                        }
                    }
                    if let CPos::Var(v) = &triple.o {
                        if bound.contains(v) && probe.o.is_none() {
                            probe.o = Some(TermId(u64::MAX));
                        }
                    }
                    if let CGraph::Var(v) = &triple.g {
                        if bound.contains(v) {
                            probe.g = GraphConstraint::Named(TermId(u64::MAX));
                        }
                    }
                }
                self.view
                    .access_paths(&probe)
                    .into_iter()
                    .next()
                    .map(|(_, p)| p)
            };

            for v in triple.var_slots() {
                bound.insert(v);
            }

            steps.push(Step {
                triple,
                strategy,
                est_scan,
                est_out: out_card.min(u64::MAX as f64) as u64,
                access,
            });
        }
        steps
    }
}
