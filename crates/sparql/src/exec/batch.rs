//! The vectorized columnar pipeline.
//!
//! A drive plan whose stages are all element-wise (steps and filters — no
//! sibling Node stages) can run batch-at-a-time over *columns* of
//! dictionary IDs instead of materialised `Row`s: the driving index scan
//! fills one `Vec<u64>` per bound variable straight from the sorted key
//! runs, each join step turns a batch into the next batch via a
//! source-index vector (the columnar analogue of the row pipeline's
//! extend-per-match loop), and filters emit selection vectors that are
//! applied with a single gather per surviving column. Dictionary
//! materialisation is deferred: only FILTER expressions that need term
//! values (the scalar fallback) and final result emission touch the
//! dictionary; everything else moves raw IDs.
//!
//! Liveness analysis prunes dead columns: a variable that no downstream
//! operator and no output expression reads is never gathered (or even
//! extracted from the index) past its last use. Output rows carry only
//! the live slots — [`exec_select`](super::exec_select) narrows to the
//! projected slots anyway, so results are bit-identical to the row
//! pipeline's.
//!
//! Everything here mirrors the row pipeline's semantics *exactly*: the
//! same probe patterns, the same charge totals against [`ExecLimits`],
//! and the same per-step profile tallies (loops, rows) for EXPLAIN
//! ANALYZE. Plans the compiler here cannot express (sibling nodes,
//! repeated unbound variables inside one triple, computed IDs in the base
//! row, statically unbound hash-join keys) fall back to the row pipeline
//! by returning `None` from [`VecPipeline::compile`].

use super::*;

/// Per-slot static binding state during pipeline compilation.
#[derive(Clone, Copy, PartialEq)]
enum BindState {
    /// Not bound by anything yet.
    Unbound,
    /// Bound to a constant by the base row (VALUES pin / pushdown).
    Base(u64),
    /// Bound by the driving scan or an upstream operator: has a column.
    Col,
}

/// Where a probe position's constraint comes from, resolved per row.
#[derive(Clone, Copy)]
enum PosSpec {
    /// Unconstrained (the operator binds it from the matched quad).
    Any,
    /// A constant (triple constant or base-row binding).
    Const(u64),
    /// The current value of a column.
    Col(usize),
}

/// The graph constraint of a probe, resolved per row.
#[derive(Clone, Copy)]
enum GSpec {
    Fixed(GraphConstraint),
    /// A bound graph-variable column: `Named(col[i])`.
    Col(usize),
}

/// A per-row probe pattern builder (mirrors [`probe_pattern`]).
#[derive(Clone, Copy)]
struct ProbeSpec {
    s: PosSpec,
    p: PosSpec,
    o: PosSpec,
    g: GSpec,
}

/// A per-row scalar source (hash keys, residual equality checks).
#[derive(Clone, Copy)]
enum ValSrc {
    Const(u64),
    Col(usize),
}

/// One compiled filter conjunct.
enum FilterSpec<'p> {
    /// Statically true (constant-folded against the base row).
    True,
    /// Statically false — kills the whole batch.
    False,
    /// `?v = <const>` over a column (the `SlotEqConst` fast path; column
    /// IDs are store IDs, never computed, so the ID compare is exact).
    ColEqConst { slot: usize, id: u64 },
    /// `isIRI`/`isLiteral`/`isBlank` over a column.
    ColKind { slot: usize, kind: TermKind },
    /// Scalar fallback: fill a scratch row with the listed columns and
    /// evaluate through the row pipeline's `RowEnv` (EXISTS and complex
    /// expressions take this path, with identical semantics).
    Generic { expr: &'p CExpr, col_slots: Vec<usize> },
}

/// One vectorized operator.
enum VecOp<'p> {
    /// Index nested-loop probe: per input row, probe the per-row pattern
    /// and emit one output row per match (memoized on the pattern, which
    /// repeats in long runs because the drive column is index-sorted).
    Probe { step: &'p Step, spec: ProbeSpec, binds: Vec<(usize, usize)>, keep: Vec<usize> },
    /// Pure existence/multiplicity check: every position statically
    /// bound, so each input row is replicated `count_matches` times.
    Count { step: &'p Step, spec: ProbeSpec, keep: Vec<usize> },
    /// Hash-join probe against the shared build table.
    Hash {
        step: &'p Step,
        cell: Arc<OnceLock<BuildTable>>,
        key_srcs: Vec<ValSrc>,
        /// Residual equality checks for positions the key does not cover
        /// (mirrors `extend_row`'s consistency checks).
        checks: Vec<(usize, ValSrc)>,
        binds: Vec<(usize, usize)>,
        keep: Vec<usize>,
    },
    /// A FILTER conjunction emitting a selection vector.
    Filter { specs: Vec<FilterSpec<'p>>, keep: Vec<usize> },
}

impl VecOp<'_> {
    fn step_key(&self) -> Option<usize> {
        match self {
            VecOp::Probe { step, .. } | VecOp::Count { step, .. } | VecOp::Hash { step, .. } => {
                Some(*step as *const Step as usize)
            }
            VecOp::Filter { .. } => None,
        }
    }
}

/// A batch of column vectors, indexed by binding slot. Only live slots
/// hold a column; every live column has exactly `len` values.
struct Batch {
    len: usize,
    cols: Vec<Option<Vec<u64>>>,
}

impl Batch {
    fn col(&self, slot: usize) -> &[u64] {
        self.cols[slot].as_deref().expect("live column")
    }
}

/// Per-op probe memoization: the driving column is index-sorted, so
/// consecutive rows usually probe the same pattern. Persisted across
/// batches and morsels (the store is immutable during a query).
#[derive(Default)]
struct OpMemo {
    pattern: Option<QuadPattern>,
    /// Matched quads' bind values, one vector per materialized bind.
    vals: Vec<Vec<u64>>,
    /// Match count (also used by Count ops, which materialise nothing).
    count: usize,
}

/// Per-worker mutable pipeline state (memoization only; everything else
/// lives on the stack of `run_morsel`).
#[derive(Default)]
pub(super) struct VecState {
    memos: Vec<OpMemo>,
}

impl VecState {
    pub(super) fn new(pipe: &VecPipeline<'_>) -> VecState {
        let mut memos = Vec::with_capacity(pipe.ops.len());
        for op in &pipe.ops {
            let nvals = match op {
                VecOp::Probe { binds, .. } | VecOp::Hash { binds, .. } => binds.len(),
                _ => 0,
            };
            memos.push(OpMemo { pattern: None, vals: vec![Vec::new(); nvals], count: 0 });
        }
        VecState { memos }
    }
}

/// A compiled vectorized pipeline for one drive plan.
pub(super) struct VecPipeline<'p> {
    drive: &'p Step,
    prefer: Option<usize>,
    base: Row,
    /// Quad positions the driving scan extracts (parallel to
    /// `drive_slots`), pruned to live slots.
    positions: Vec<usize>,
    drive_slots: Vec<usize>,
    ops: Vec<VecOp<'p>>,
    /// Column slots present after the last operator.
    final_cols: Vec<usize>,
    /// Output row template: base constants at needed slots, `None`
    /// elsewhere.
    template: Row,
}

/// The slots the rest of [`exec_select`] reads from produced rows:
/// projected slots, projection/ORDER BY/HAVING expression inputs, GROUP
/// BY keys, and aggregate expression inputs. An EXISTS reference anywhere
/// makes every slot needed (its inner pattern may read any of them).
pub(super) fn needed_slots(ctx: &EvalCtx, sel: &CSelect) -> Vec<bool> {
    let mut need = vec![false; ctx.vars.len()];
    let mut slots: Vec<usize> = Vec::new();
    let mut exists = false;
    for &s in &sel.projected_slots() {
        need[s] = true;
    }
    for proj in &sel.projection {
        need[proj.slot] = true;
        if let Some(expr) = &proj.expr {
            exists |= expr.collect_slots(&mut slots);
        }
    }
    for (expr, _) in &sel.order_by {
        exists |= expr.collect_slots(&mut slots);
    }
    for h in &sel.having {
        exists |= h.collect_slots(&mut slots);
    }
    for &s in &sel.group_slots {
        need[s] = true;
    }
    for agg in &sel.aggregates {
        match agg {
            CAggregate::CountAll => {}
            CAggregate::Count { expr, .. }
            | CAggregate::Sum(expr)
            | CAggregate::Avg(expr)
            | CAggregate::Min(expr)
            | CAggregate::Max(expr) => exists |= expr.collect_slots(&mut slots),
        }
    }
    if exists {
        need.iter_mut().for_each(|b| *b = true);
    } else {
        for s in slots {
            need[s] = true;
        }
    }
    need
}

impl<'p> VecPipeline<'p> {
    /// Compiles a drive plan into a vectorized pipeline, or `None` when a
    /// construct forces the row pipeline.
    pub(super) fn compile(
        ctx: &EvalCtx,
        plan: &DrivePlan<'p>,
        needed: &[bool],
    ) -> Option<VecPipeline<'p>> {
        let nvars = ctx.vars.len();
        debug_assert_eq!(needed.len(), nvars);
        // Computed IDs in the base row take per-row code paths
        // (probe_pattern bailouts, hash-join skips) that the columnar
        // compiler does not model.
        if plan.base.iter().flatten().any(|id| id & COMPUTED_BIT != 0) {
            return None;
        }
        let mut bind: Vec<BindState> = plan
            .base
            .iter()
            .map(|v| match v {
                Some(id) => BindState::Base(*id),
                None => BindState::Unbound,
            })
            .collect();

        // The driving scan binds its triple's free variable positions.
        let drive_binds_all = triple_binds(&plan.drive.triple, &mut bind)?;

        // Pass 1: draft every operator, tracking reads and binds.
        struct Draft<'p> {
            op: VecOp<'p>,
            reads: Vec<usize>,
            binds_all: Vec<(usize, usize)>,
        }
        let mut drafts: Vec<Draft<'p>> = Vec::new();
        let mut any_exists = false;
        for stage in &plan.stages {
            match stage {
                Stage::Node(_) => return None,
                Stage::Steps(steps) => {
                    for step in *steps {
                        let draft = match &step.strategy {
                            Strategy::IndexNlj => {
                                let (spec, reads) = probe_spec(&step.triple, &bind)?;
                                let binds_all = triple_binds(&step.triple, &mut bind)?;
                                if binds_all.is_empty() {
                                    Draft {
                                        op: VecOp::Count { step, spec, keep: Vec::new() },
                                        reads,
                                        binds_all,
                                    }
                                } else {
                                    Draft {
                                        op: VecOp::Probe {
                                            step,
                                            spec,
                                            binds: Vec::new(),
                                            keep: Vec::new(),
                                        },
                                        reads,
                                        binds_all,
                                    }
                                }
                            }
                            Strategy::HashJoin { join_slots } => {
                                // A statically unbound or repeated key slot
                                // takes the streaming per-row fallback.
                                if join_slots.iter().any(|&s| bind[s] == BindState::Unbound) {
                                    return None;
                                }
                                let mut reads = Vec::new();
                                let key_srcs: Vec<ValSrc> = join_slots
                                    .iter()
                                    .map(|&s| val_src(s, &bind, &mut reads))
                                    .collect();
                                let key_pos = key_positions(&step.triple, join_slots);
                                let checks = hash_checks(
                                    &step.triple,
                                    join_slots,
                                    &key_pos,
                                    &bind,
                                    &mut reads,
                                );
                                let binds_all = triple_binds(&step.triple, &mut bind)?;
                                Draft {
                                    op: VecOp::Hash {
                                        step,
                                        cell: ctx.build_cell(step),
                                        key_srcs,
                                        checks,
                                        binds: Vec::new(),
                                        keep: Vec::new(),
                                    },
                                    reads,
                                    binds_all,
                                }
                            }
                        };
                        drafts.push(draft);
                    }
                }
                Stage::Filters(filters) => {
                    let mut reads = Vec::new();
                    let mut specs = Vec::with_capacity(filters.len());
                    for f in filters.iter() {
                        let (spec, exists) = filter_spec(ctx, f, &plan.base, &bind, &mut reads);
                        any_exists |= exists;
                        specs.push(spec);
                    }
                    drafts.push(Draft {
                        op: VecOp::Filter { specs, keep: Vec::new() },
                        reads,
                        binds_all: Vec::new(),
                    });
                }
            }
        }

        // An EXISTS inside a filter may read any slot through its inner
        // pattern: keep everything alive.
        let mut final_need: Vec<bool> = needed.to_vec();
        if any_exists {
            final_need.iter_mut().for_each(|b| *b = true);
            for d in &mut drafts {
                if let VecOp::Filter { specs, .. } = &mut d.op {
                    for s in specs.iter_mut() {
                        if let FilterSpec::Generic { col_slots, .. } = s {
                            // Fill every column that exists at this point;
                            // computed below once liveness is known.
                            col_slots.clear();
                        }
                    }
                }
            }
        }

        // Pass 2: backward liveness. need_from[k] = slots read by op k or
        // any later op, or needed by the output — minus slots op k binds
        // (they do not exist upstream of k).
        let nops = drafts.len();
        let mut need_from: Vec<Vec<bool>> = vec![vec![false; nvars]; nops + 1];
        need_from[nops].clone_from(&final_need);
        for k in (0..nops).rev() {
            let mut cur = need_from[k + 1].clone();
            for &(_, slot) in &drafts[k].binds_all {
                cur[slot] = false;
            }
            for &s in &drafts[k].reads {
                cur[s] = true;
            }
            need_from[k] = cur;
        }

        // Pass 3: forward presence; prune drive columns, per-op binds and
        // keep lists to live slots.
        let mut present = vec![false; nvars];
        let mut positions = Vec::new();
        let mut drive_slots = Vec::new();
        for &(pos, slot) in &drive_binds_all {
            present[slot] = true;
            if need_from[0][slot] {
                positions.push(pos);
                drive_slots.push(slot);
            }
        }
        let mut live: Vec<bool> = (0..nvars).map(|s| present[s] && need_from[0][s]).collect();
        let mut ops: Vec<VecOp<'p>> = Vec::with_capacity(nops);
        for (k, draft) in drafts.into_iter().enumerate() {
            let Draft { mut op, binds_all, .. } = draft;
            let keep_list: Vec<usize> =
                (0..nvars).filter(|&s| live[s] && need_from[k + 1][s]).collect();
            for &(_, slot) in &binds_all {
                present[slot] = true;
            }
            let bind_list: Vec<(usize, usize)> = binds_all
                .iter()
                .copied()
                .filter(|&(_, slot)| need_from[k + 1][slot])
                .collect();
            match &mut op {
                VecOp::Probe { binds, keep, .. } | VecOp::Hash { binds, keep, .. } => {
                    *binds = bind_list.clone();
                    *keep = keep_list.clone();
                }
                VecOp::Count { keep, .. } | VecOp::Filter { keep, .. } => {
                    *keep = keep_list.clone();
                }
            }
            if any_exists {
                if let VecOp::Filter { specs, .. } = &mut op {
                    for s in specs.iter_mut() {
                        if let FilterSpec::Generic { col_slots, .. } = s {
                            if col_slots.is_empty() {
                                // Entering columns of this op: everything
                                // live before the filter runs.
                                *col_slots = (0..nvars)
                                    .filter(|&s| live[s] && need_from[k][s])
                                    .collect();
                            }
                        }
                    }
                }
            }
            live = vec![false; nvars];
            for &s in &keep_list {
                live[s] = true;
            }
            for &(_, s) in &bind_list {
                live[s] = true;
            }
            ops.push(op);
        }
        let final_cols: Vec<usize> = (0..nvars).filter(|&s| live[s]).collect();

        let mut template = vec![None; nvars];
        for (slot, v) in plan.base.iter().enumerate() {
            if final_need[slot] {
                template[slot] = *v;
            }
        }

        Some(VecPipeline {
            drive: plan.drive,
            prefer: plan.prefer,
            base: plan.base.clone(),
            positions,
            drive_slots,
            ops,
            final_cols,
            template,
        })
    }

    /// Runs the whole pipeline sequentially (the `threads == 1` entry
    /// point): every morsel in order, rows appended to `out`. Profile
    /// tallies mirror the streaming pipeline's exactly.
    pub(super) fn run_sequential(&self, ctx: &EvalCtx, out: &mut Vec<Row>) {
        let drive_key = self.drive as *const Step as usize;
        if let Some(p) = &ctx.profile {
            // The streaming pipeline wraps every step eagerly, creating a
            // (possibly zero) tally even for steps never reached; its
            // driving step consumes exactly one seed row.
            p.add(drive_key, 0, 1, 0);
            for op in &self.ops {
                if let Some(key) = op.step_key() {
                    p.add(key, 0, 0, 0);
                }
            }
        }
        let Some(pattern) = probe_pattern(&self.base, &self.drive.triple) else {
            return;
        };
        let morsels = ctx.view.plan_morsels(&pattern, ctx.morsel_size);
        let row_bytes = ctx.vars.len() as u64 * SLOT_BYTES + 32;
        let mut st = VecState::new(self);
        let mut claimed = 0u64;
        for morsel in &morsels {
            if ctx.is_exhausted() {
                break;
            }
            claimed += 1;
            let before = out.len();
            self.run_morsel(ctx, &pattern, morsel, &mut st, out);
            let produced = (out.len() - before) as u64;
            if produced > 0 {
                let _ = ctx.charge_mem(produced * row_bytes);
            }
        }
        if telemetry::enabled() {
            crate::metrics::morsels_claimed().add(claimed);
        }
    }

    /// Runs one morsel through the pipeline, materialising finished rows
    /// into `out` (template + live columns only).
    pub(super) fn run_morsel(
        &self,
        ctx: &EvalCtx,
        pattern: &QuadPattern,
        morsel: &Morsel,
        st: &mut VecState,
        out: &mut Vec<Row>,
    ) {
        self.for_each_batch(ctx, pattern, morsel, st, &mut |batch: &Batch| {
            out.reserve(batch.len);
            for i in 0..batch.len {
                let mut row = self.template.clone();
                for &s in &self.final_cols {
                    row[s] = Some(batch.col(s)[i]);
                }
                out.push(row);
            }
        });
    }

    /// Runs one morsel and feeds finished batches to `sink`. Handles the
    /// drive scan, chunking into `ctx.batch_size` batches, charging (row
    /// totals identical to the row pipeline; column buffers charged
    /// against the memory budget and released at morsel end), profiling
    /// and telemetry.
    fn for_each_batch(
        &self,
        ctx: &EvalCtx,
        pattern: &QuadPattern,
        morsel: &Morsel,
        st: &mut VecState,
        sink: &mut dyn FnMut(&Batch),
    ) {
        let track = telemetry::enabled();
        let profile = ctx.profile.clone();
        let nvars = ctx.vars.len();
        let mut charged_bytes: u64 = 0;

        // 1. Drive scan → columns.
        let t0 = profile.as_ref().map(|_| Instant::now());
        let mut dcols: Vec<Vec<u64>> = vec![Vec::new(); self.positions.len()];
        let n = ctx.view.scan_morsel_columns(pattern, morsel, self.prefer, &self.positions, &mut dcols);
        if let (Some(p), Some(t0)) = (&profile, t0) {
            p.add(
                self.drive as *const Step as usize,
                n as u64,
                0,
                t0.elapsed().as_nanos() as u64,
            );
        }
        if n == 0 {
            return;
        }
        if !ctx.charge(n as u64) {
            return;
        }
        charged_bytes += (n * self.positions.len() * 8) as u64;
        let _ = ctx.charge_mem((n * self.positions.len() * 8) as u64);
        if track {
            crate::metrics::vec_batches_emitted().inc();
            crate::metrics::vec_rows_emitted().add(n as u64);
        }

        // 2. Chunk into batches and run the operator chain.
        let bsz = ctx.batch_size.max(1);
        let mut start = 0usize;
        while start < n {
            if ctx.is_exhausted() {
                break;
            }
            let end = (start + bsz).min(n);
            let mut batch = Batch { len: end - start, cols: vec![None; nvars] };
            for (ci, &slot) in self.drive_slots.iter().enumerate() {
                batch.cols[slot] = Some(dcols[ci][start..end].to_vec());
            }
            let mut cur = Some(batch);
            for (k, op) in self.ops.iter().enumerate() {
                let b = cur.take().expect("batch alive inside chain");
                if b.len == 0 || ctx.is_exhausted() {
                    break;
                }
                let t0 = profile.as_ref().map(|_| Instant::now());
                let in_len = b.len;
                let Some(next) = self.run_op(ctx, op, &mut st.memos[k], b, &mut charged_bytes)
                else {
                    break;
                };
                if let (Some(p), Some(t0), Some(key)) = (&profile, t0, op.step_key()) {
                    p.add(key, next.len as u64, in_len as u64, t0.elapsed().as_nanos() as u64);
                }
                if track && !matches!(op, VecOp::Filter { .. }) {
                    crate::metrics::vec_batches_emitted().inc();
                    crate::metrics::vec_rows_emitted().add(next.len as u64);
                }
                cur = Some(next);
            }
            if let Some(b) = cur {
                if b.len > 0 {
                    sink(&b);
                }
            }
            start = end;
        }
        ctx.release_mem(charged_bytes);
    }

    /// Applies one operator to a batch. `None` means a resource limit
    /// fired mid-operator (the charge totals match the row pipeline).
    fn run_op(
        &self,
        ctx: &EvalCtx,
        op: &VecOp<'p>,
        memo: &mut OpMemo,
        batch: Batch,
        charged_bytes: &mut u64,
    ) -> Option<Batch> {
        let nvars = batch.cols.len();
        match op {
            VecOp::Count { spec, keep, .. } => {
                let row_bytes = keep.len() as u64 * 8;
                let mut charged_rows = 0usize;
                let mut src: Vec<u32> = Vec::new();
                for i in 0..batch.len {
                    let pat = spec.pattern(&batch, i);
                    if memo.pattern != Some(pat) {
                        memo.count = ctx.view.count_matches(&pat);
                        memo.pattern = Some(pat);
                    }
                    if memo.count > 0 {
                        src.extend(std::iter::repeat(i as u32).take(memo.count));
                        if !settle(ctx, row_bytes, &mut charged_rows, charged_bytes, src.len(), false) {
                            return None;
                        }
                    }
                }
                if !settle(ctx, row_bytes, &mut charged_rows, charged_bytes, src.len(), true) {
                    return None;
                }
                Some(gather_batch(&batch, &src, keep, &[], Vec::new(), nvars))
            }
            VecOp::Probe { spec, binds, keep, .. } => {
                let row_bytes = (keep.len() + binds.len()) as u64 * 8;
                let mut charged_rows = 0usize;
                let mut src: Vec<u32> = Vec::new();
                let mut fresh: Vec<Vec<u64>> = vec![Vec::new(); binds.len()];
                for i in 0..batch.len {
                    let pat = spec.pattern(&batch, i);
                    if memo.pattern != Some(pat) {
                        for v in memo.vals.iter_mut() {
                            v.clear();
                        }
                        memo.count = 0;
                        for quad in ctx.view.probe(pat) {
                            for (bi, &(pos, _)) in binds.iter().enumerate() {
                                memo.vals[bi].push(quad[pos]);
                            }
                            memo.count += 1;
                        }
                        memo.pattern = Some(pat);
                    }
                    if memo.count > 0 {
                        src.extend(std::iter::repeat(i as u32).take(memo.count));
                        for (bi, vals) in memo.vals.iter().enumerate() {
                            fresh[bi].extend_from_slice(vals);
                        }
                        if !settle(ctx, row_bytes, &mut charged_rows, charged_bytes, src.len(), false) {
                            return None;
                        }
                    }
                }
                if !settle(ctx, row_bytes, &mut charged_rows, charged_bytes, src.len(), true) {
                    return None;
                }
                Some(gather_batch(&batch, &src, keep, binds, fresh, nvars))
            }
            VecOp::Hash { cell, key_srcs, checks, binds, keep, step } => {
                let table =
                    cell.get_or_init(|| build_table(ctx, step, hash_join_slots(step)));
                let row_bytes = (keep.len() + binds.len()) as u64 * 8;
                let mut charged_rows = 0usize;
                let mut src: Vec<u32> = Vec::new();
                let mut fresh: Vec<Vec<u64>> = vec![Vec::new(); binds.len()];
                let mut key = vec![0u64; key_srcs.len()];
                for i in 0..batch.len {
                    for (dst, ks) in key.iter_mut().zip(key_srcs) {
                        *dst = ks.value(&batch, i);
                    }
                    let Some(quads) = table.get(key.as_slice()) else { continue };
                    for quad in quads {
                        if checks.iter().any(|(pos, vs)| quad[*pos] != vs.value(&batch, i)) {
                            continue;
                        }
                        src.push(i as u32);
                        for (bi, &(pos, _)) in binds.iter().enumerate() {
                            fresh[bi].push(quad[pos]);
                        }
                    }
                    if !settle(ctx, row_bytes, &mut charged_rows, charged_bytes, src.len(), false) {
                        return None;
                    }
                }
                if !settle(ctx, row_bytes, &mut charged_rows, charged_bytes, src.len(), true) {
                    return None;
                }
                Some(gather_batch(&batch, &src, keep, binds, fresh, nvars))
            }
            VecOp::Filter { specs, keep, .. } => {
                let in_len = batch.len;
                let mut sel: Vec<u32> = Vec::with_capacity(batch.len);
                let mut scratch: Option<Row> = None;
                'rows: for i in 0..batch.len {
                    // Filters produce no rows, so they observe deadlines and
                    // cancellation through the rowless tick, one per stride.
                    if i % 1024 == 1023 && !ctx.tick(1024) {
                        return None;
                    }
                    for spec in specs {
                        let pass = match spec {
                            FilterSpec::True => true,
                            FilterSpec::False => false,
                            FilterSpec::ColEqConst { slot, id } => batch.col(*slot)[i] == *id,
                            FilterSpec::ColKind { slot, kind } => {
                                ctx.kind(batch.col(*slot)[i]) == Some(*kind)
                            }
                            FilterSpec::Generic { expr, col_slots } => {
                                let row = scratch.get_or_insert_with(|| self.base.clone());
                                for &s in col_slots {
                                    row[s] = Some(batch.col(s)[i]);
                                }
                                let env = RowEnv { ctx, row, aggs: None };
                                expr.eval_filter(&env)
                            }
                        };
                        if !pass {
                            continue 'rows;
                        }
                    }
                    sel.push(i as u32);
                }
                if telemetry::enabled() && in_len > 0 {
                    crate::metrics::vec_filter_selectivity()
                        .record((sel.len() * 100 / in_len) as u64);
                }
                if sel.len() == in_len {
                    // Everything survived: reuse the batch as-is (dropping
                    // columns that die here).
                    let mut cols = batch.cols;
                    let mut kept: Vec<Option<Vec<u64>>> = vec![None; nvars];
                    for &s in keep {
                        kept[s] = cols[s].take();
                    }
                    return Some(Batch { len: in_len, cols: kept });
                }
                let bytes = (sel.len() * keep.len() * 8) as u64;
                if bytes > 0 {
                    *charged_bytes += bytes;
                    if !ctx.charge_mem(bytes) {
                        return None;
                    }
                }
                Some(gather_batch(&batch, &sel, keep, &[], Vec::new(), nvars))
            }
        }
    }

    /// Runs one morsel in grouped mode: surviving batches feed the
    /// run-length group accumulator directly, without materialising rows
    /// when every aggregate is a plain count.
    pub(super) fn run_morsel_grouped(
        &self,
        ctx: &EvalCtx,
        sel: &CSelect,
        fast: &[FastAgg],
        pattern: &QuadPattern,
        morsel: &Morsel,
        st: &mut VecState,
        sink: &mut RunSink,
    ) {
        // Static per-row increments: a counted slot that is a live column
        // is always bound; one bound from the base row always counts; an
        // unbound one never does.
        let col_is_live = |s: usize| self.final_cols.contains(&s);
        let columnar = fast.iter().all(|f| !matches!(f, FastAgg::Generic));
        if columnar {
            let incs: Vec<u64> = fast
                .iter()
                .map(|f| match f {
                    FastAgg::CountAll => 1,
                    FastAgg::CountSlot(s) => {
                        u64::from(col_is_live(*s) || self.base[*s].is_some())
                    }
                    FastAgg::Generic => unreachable!("checked above"),
                })
                .collect();
            enum KeySrc {
                Col(usize),
                Fixed(Option<u64>),
            }
            let key_srcs: Vec<KeySrc> = sel
                .group_slots
                .iter()
                .map(|&s| if col_is_live(s) { KeySrc::Col(s) } else { KeySrc::Fixed(self.base[s]) })
                .collect();
            let mut key: Vec<Option<u64>> = vec![None; key_srcs.len()];
            self.for_each_batch(ctx, pattern, morsel, st, &mut |batch: &Batch| {
                for i in 0..batch.len {
                    for (dst, ks) in key.iter_mut().zip(&key_srcs) {
                        *dst = match ks {
                            KeySrc::Col(s) => Some(batch.col(*s)[i]),
                            KeySrc::Fixed(v) => *v,
                        };
                    }
                    sink.push_counts(ctx, sel, &key, &incs);
                }
            });
            return;
        }
        // Generic aggregates evaluate expressions per row: materialise
        // (live slots only — aggregate inputs are in the needed set).
        self.for_each_batch(ctx, pattern, morsel, st, &mut |batch: &Batch| {
            let mut row = self.template.clone();
            for i in 0..batch.len {
                for &s in &self.final_cols {
                    row[s] = Some(batch.col(s)[i]);
                }
                sink.push(ctx, sel, fast, &row);
            }
        });
    }
}

/// Charges newly produced operator output — rows against the row budget
/// (which also polls the deadline and the cancel token every
/// [`DEADLINE_STRIDE`] rows) and output-column bytes against the memory
/// budget — in [`MEM_CHARGE_CHUNK`]-row chunks, so limits land with the
/// streaming pipeline's stride even inside one wide batch. `false` means
/// a limit fired (sticky; the caller abandons the batch).
fn settle(
    ctx: &EvalCtx,
    row_bytes: u64,
    charged_rows: &mut usize,
    charged_bytes: &mut u64,
    produced: usize,
    force: bool,
) -> bool {
    let pending = (produced - *charged_rows) as u64;
    if pending == 0 || (!force && pending < MEM_CHARGE_CHUNK) {
        return true;
    }
    *charged_rows = produced;
    if !ctx.charge(pending) {
        return false;
    }
    let bytes = pending * row_bytes;
    if bytes > 0 {
        *charged_bytes += bytes;
        if !ctx.charge_mem(bytes) {
            return false;
        }
    }
    true
}

/// Gathers `keep` columns of `batch` through the source-index vector and
/// installs freshly built bind columns (the buffers were already charged
/// by [`settle`] as they grew).
fn gather_batch(
    batch: &Batch,
    src: &[u32],
    keep: &[usize],
    binds: &[(usize, usize)],
    fresh: Vec<Vec<u64>>,
    nvars: usize,
) -> Batch {
    let mut cols: Vec<Option<Vec<u64>>> = vec![None; nvars];
    for &s in keep {
        let old = batch.col(s);
        let mut newc = Vec::with_capacity(src.len());
        for &i in src {
            newc.push(old[i as usize]);
        }
        cols[s] = Some(newc);
    }
    for ((_, slot), vals) in binds.iter().zip(fresh) {
        debug_assert_eq!(vals.len(), src.len());
        cols[*slot] = Some(vals);
    }
    Batch { len: src.len(), cols }
}

impl ProbeSpec {
    /// The per-row probe pattern (mirrors [`probe_pattern`] over a row
    /// whose bound slots come from columns and base constants).
    fn pattern(&self, batch: &Batch, i: usize) -> QuadPattern {
        let get = |ps: &PosSpec| match ps {
            PosSpec::Any => None,
            PosSpec::Const(id) => Some(TermId(*id)),
            PosSpec::Col(s) => Some(TermId(batch.col(*s)[i])),
        };
        QuadPattern {
            s: get(&self.s),
            p: get(&self.p),
            o: get(&self.o),
            g: match &self.g {
                GSpec::Fixed(g) => *g,
                GSpec::Col(s) => GraphConstraint::Named(TermId(batch.col(*s)[i])),
            },
        }
    }
}

impl ValSrc {
    fn value(&self, batch: &Batch, i: usize) -> u64 {
        match self {
            ValSrc::Const(id) => *id,
            ValSrc::Col(s) => batch.col(*s)[i],
        }
    }
}

/// The free variable positions a triple binds, updating the bind states.
/// `None` when the triple repeats an unbound variable (the row pipeline's
/// per-quad consistency checks have no columnar equivalent here) or pins
/// a constant absent from the store (per-row probes would all be empty;
/// rare enough to leave to the row pipeline).
fn triple_binds(triple: &CTriple, bind: &mut [BindState]) -> Option<Vec<(usize, usize)>> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    let mut visit = |pos: usize, cpos: &CPos| -> Option<()> {
        match cpos {
            CPos::Var(slot) => {
                if bind[*slot] == BindState::Unbound {
                    if out.iter().any(|&(_, s)| s == *slot) {
                        return None;
                    }
                    out.push((pos, *slot));
                }
                Some(())
            }
            CPos::Const(_, Some(_)) => Some(()),
            CPos::Const(_, None) => None,
        }
    };
    visit(quadstore::ids::S, &triple.s)?;
    visit(quadstore::ids::P, &triple.p)?;
    visit(quadstore::ids::O, &triple.o)?;
    match &triple.g {
        CGraph::Any | CGraph::Default => {}
        CGraph::Const(_, Some(_)) => {}
        CGraph::Const(_, None) => return None,
        CGraph::Var(slot) => {
            if bind[*slot] == BindState::Unbound {
                if out.iter().any(|&(_, s)| s == *slot) {
                    return None;
                }
                out.push((quadstore::ids::G, *slot));
            }
        }
    }
    for &(_, slot) in &out {
        bind[slot] = BindState::Col;
    }
    Some(out)
}

/// Builds a probe spec from a triple and the current bind states,
/// recording column reads. `None` for constants absent from the store.
fn probe_spec(triple: &CTriple, bind: &[BindState]) -> Option<(ProbeSpec, Vec<usize>)> {
    let mut reads = Vec::new();
    let mut pos = |cpos: &CPos| -> Option<PosSpec> {
        match cpos {
            CPos::Var(slot) => match bind[*slot] {
                BindState::Unbound => Some(PosSpec::Any),
                BindState::Base(id) => Some(PosSpec::Const(id)),
                BindState::Col => {
                    reads.push(*slot);
                    Some(PosSpec::Col(*slot))
                }
            },
            CPos::Const(_, Some(id)) => Some(PosSpec::Const(id.0)),
            CPos::Const(_, None) => None,
        }
    };
    let s = pos(&triple.s)?;
    let p = pos(&triple.p)?;
    let o = pos(&triple.o)?;
    let g = match &triple.g {
        CGraph::Any => GSpec::Fixed(GraphConstraint::Any),
        CGraph::Default => GSpec::Fixed(GraphConstraint::DefaultOnly),
        CGraph::Const(_, Some(id)) => GSpec::Fixed(GraphConstraint::Named(*id)),
        CGraph::Const(_, None) => return None,
        CGraph::Var(slot) => match bind[*slot] {
            BindState::Unbound => GSpec::Fixed(GraphConstraint::AnyNamed),
            BindState::Base(id) => GSpec::Fixed(GraphConstraint::Named(TermId(id))),
            BindState::Col => {
                reads.push(*slot);
                GSpec::Col(*slot)
            }
        },
    };
    Some((ProbeSpec { s, p, o, g }, reads))
}

/// A bound slot's per-row value source.
fn val_src(slot: usize, bind: &[BindState], reads: &mut Vec<usize>) -> ValSrc {
    match bind[slot] {
        BindState::Base(id) => ValSrc::Const(id),
        BindState::Col => {
            reads.push(slot);
            ValSrc::Col(slot)
        }
        BindState::Unbound => unreachable!("caller checked boundness"),
    }
}

/// Residual consistency checks for a hash probe: every position
/// `extend_row` would verify that the key positions do not already cover.
fn hash_checks(
    triple: &CTriple,
    join_slots: &[usize],
    key_pos: &[usize],
    bind: &[BindState],
    reads: &mut Vec<usize>,
) -> Vec<(usize, ValSrc)> {
    let mut checks = Vec::new();
    let mut visit = |pos: usize, cpos: &CPos| {
        if key_pos.contains(&pos) {
            return;
        }
        match cpos {
            CPos::Var(slot) => {
                if join_slots.contains(slot) || bind[*slot] != BindState::Unbound {
                    checks.push((pos, val_src(*slot, bind, reads)));
                }
            }
            CPos::Const(_, Some(id)) => checks.push((pos, ValSrc::Const(id.0))),
            CPos::Const(_, None) => {}
        }
    };
    visit(quadstore::ids::S, &triple.s);
    visit(quadstore::ids::P, &triple.p);
    visit(quadstore::ids::O, &triple.o);
    if let CGraph::Var(slot) = &triple.g {
        if !key_pos.contains(&quadstore::ids::G)
            && (join_slots.contains(slot) || bind[*slot] != BindState::Unbound)
        {
            checks.push((quadstore::ids::G, val_src(*slot, bind, reads)));
        }
    }
    checks
}

/// Compiles one FILTER conjunct. Returns the spec plus whether the
/// expression references EXISTS (which widens liveness to every slot).
fn filter_spec<'p>(
    ctx: &EvalCtx,
    expr: &'p CExpr,
    base: &Row,
    bind: &[BindState],
    reads: &mut Vec<usize>,
) -> (FilterSpec<'p>, bool) {
    let mut slots = Vec::new();
    let exists = expr.collect_slots(&mut slots);
    let col_slots: Vec<usize> = {
        let mut cs: Vec<usize> = slots
            .iter()
            .copied()
            .filter(|&s| bind[s] == BindState::Col)
            .collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    };
    if !exists && col_slots.is_empty() {
        // Every input is a base constant or statically unbound: constant
        // fold by evaluating against the base row (the exact environment
        // the row pipeline would see for these slots).
        let env = RowEnv { ctx, row: base, aggs: None };
        let spec = if expr.eval_filter(&env) { FilterSpec::True } else { FilterSpec::False };
        return (spec, false);
    }
    reads.extend_from_slice(&col_slots);
    if !exists {
        match expr {
            CExpr::SlotEqConst(slot, Some(id), _) if bind[*slot] == BindState::Col => {
                return (FilterSpec::ColEqConst { slot: *slot, id: *id }, false);
            }
            CExpr::KindCheck(slot, kind) if bind[*slot] == BindState::Col => {
                return (FilterSpec::ColKind { slot: *slot, kind: *kind }, false);
            }
            _ => {}
        }
    }
    (FilterSpec::Generic { expr, col_slots }, exists)
}

/// The join slots of a hash step (for the shared build-table closure).
fn hash_join_slots(step: &Step) -> &[usize] {
    match &step.strategy {
        Strategy::HashJoin { join_slots } => join_slots,
        Strategy::IndexNlj => unreachable!("hash op on NLJ step"),
    }
}

/// The sequential vectorized producer for a non-grouped SELECT: splits
/// root UNIONs like the parallel executor, compiles every branch (all or
/// nothing, so no charges land before the decision to use the vectorized
/// path), and runs the branches in sequential order. `None` falls back to
/// the streaming row pipeline.
pub(super) fn vec_produce(ctx: &EvalCtx, sel: &CSelect) -> Option<Vec<Row>> {
    if !ctx.vectorize {
        return None;
    }
    let mut plans: Vec<DrivePlan<'_>> = Vec::new();
    if !collect_plans(ctx, &sel.root, &[], &mut plans) {
        return None;
    }
    let needed = needed_slots(ctx, sel);
    let pipes: Vec<VecPipeline<'_>> = plans
        .iter()
        .map(|p| VecPipeline::compile(ctx, p, &needed))
        .collect::<Option<_>>()?;
    let mut out = Vec::new();
    for pipe in &pipes {
        pipe.run_sequential(ctx, &mut out);
    }
    Some(out)
}
