//! Cached handles into the global [`telemetry`] registry for the SPARQL
//! engine (plan cache, compiler, morsel executor). Call sites gate on
//! [`telemetry::enabled`] so the disabled cost is one relaxed bool load
//! per event — never per row.

use std::sync::{Arc, OnceLock};

use telemetry::{Counter, Histogram};

macro_rules! counter_fn {
    ($fn:ident, $name:expr, $help:expr) => {
        /// Cached global counter (see the metric catalog in DESIGN.md §11).
        pub(crate) fn $fn() -> &'static Counter {
            static C: OnceLock<Arc<Counter>> = OnceLock::new();
            C.get_or_init(|| telemetry::global().counter($name, $help))
        }
    };
}

macro_rules! histogram_fn {
    ($fn:ident, $name:expr, $help:expr) => {
        /// Cached global histogram (see the metric catalog in DESIGN.md §11).
        pub(crate) fn $fn() -> &'static Histogram {
            static H: OnceLock<Arc<Histogram>> = OnceLock::new();
            H.get_or_init(|| telemetry::global().histogram($name, $help))
        }
    };
}

counter_fn!(plan_cache_hits, "pgrdf_plan_cache_hits_total", "Plan-cache lookups served from cache");
counter_fn!(plan_cache_misses, "pgrdf_plan_cache_misses_total", "Plan-cache lookups that had to compile");
counter_fn!(plan_cache_evictions, "pgrdf_plan_cache_evictions_total", "Plans evicted by LRU capacity pressure");
counter_fn!(plan_cache_invalidations, "pgrdf_plan_cache_invalidations_total", "Cached plans dropped because the store epoch moved");
counter_fn!(morsels_claimed, "pgrdf_morsels_claimed_total", "Morsels claimed by parallel executor workers");
histogram_fn!(compile_nanos, "pgrdf_compile_nanos", "Query parse+compile time in nanoseconds");
histogram_fn!(worker_busy_nanos, "pgrdf_worker_busy_nanos", "Per-worker busy time per parallel execution, nanoseconds");
histogram_fn!(hash_build_rows, "pgrdf_hash_build_rows", "Rows materialised into hash-join build sides");
counter_fn!(vec_batches_emitted, "pgrdf_vec_batches_emitted_total", "Column batches emitted by vectorized operators");
counter_fn!(vec_rows_emitted, "pgrdf_vec_rows_emitted_total", "Rows emitted by vectorized operators (post-selection)");
histogram_fn!(vec_filter_selectivity, "pgrdf_vec_filter_selectivity_pct", "Per-batch percentage of rows surviving a vectorized FILTER");
