//! Compiled-plan cache: parse + compile once, replay the plan until the
//! store changes.
//!
//! Compiled plans bake in three kinds of store state: interned constant
//! IDs, cost-based join order/strategy decisions, and (implicitly) the
//! index set the access paths were chosen from. The cache therefore keys
//! an entry on *(dataset signature, query text, compile options)* — the
//! dataset signature includes each member model's index set — and stamps
//! it with the store's **mutation epoch** at compile time. Every store
//! mutation (DML, DDL, index changes, even dictionary interning) bumps
//! the epoch, so a lookup whose entry carries a stale epoch is treated as
//! an invalidation: the entry is dropped and the query recompiled.
//!
//! Eviction is LRU over a fixed capacity, tracked with a monotone tick —
//! no clocks, no background threads. All counters are atomics so the
//! cache can sit behind an `&self` store handle shared across threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::SparqlError;
use crate::plan::{CompileOptions, CompiledQuery};

/// Default number of cached plans (per store handle).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// Dataset/index signature (see `DatasetView::index_signature`).
    dataset: String,
    /// Full query text, byte-for-byte.
    text: String,
    /// Compile options the plan was built under.
    options: CompileOptions,
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CompiledQuery>,
    /// Store mutation epoch the plan was compiled under.
    epoch: u64,
    /// Optimizer statistics version the plan was costed under.
    stats: u64,
    /// LRU tick of the last hit or insert.
    last_used: u64,
    /// LRU tick at insert (entry age = current tick − inserted).
    inserted: u64,
    /// Lookups served from this entry.
    hits: u64,
    /// Rows produced by the most recent execution of this plan.
    actual_rows: Option<u64>,
}

/// A point-in-time description of one live plan-cache entry — the
/// `pgrdf:sys/plans` system graph materializes these.
#[derive(Debug, Clone)]
pub struct PlanCacheEntryInfo {
    /// Dataset/index signature part of the key.
    pub dataset: String,
    /// Query text part of the key.
    pub text: String,
    /// Whether the plan was compiled for the vectorized pipeline.
    pub vectorize: bool,
    /// Store mutation epoch the plan was compiled under.
    pub epoch: u64,
    /// Optimizer statistics version the plan was costed under.
    pub stats: u64,
    /// Lookups served from this entry.
    pub hits: u64,
    /// Entry age in cache ticks (lookups since insertion).
    pub age_ticks: u64,
    /// The optimizer's final-row estimate for the plan.
    pub estimated_rows: u64,
    /// Rows produced by the most recent execution (`None` = never run).
    pub actual_rows: Option<u64>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// A bounded, epoch-validated LRU cache of compiled query plans.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the cached plan for `(dataset, text, options)` if one
    /// exists *and* was compiled under the current `epoch` *and* the
    /// optimizer statistics it was costed against are still current
    /// (`stats_version`); otherwise runs `compile`, caches its result
    /// under `epoch` and the post-compile stats version, and returns it.
    ///
    /// `stats_version` is a closure so the (cheap but non-free) version
    /// computation only happens when an entry actually exists at the
    /// current epoch — the epoch check already subsumes it otherwise,
    /// since every mutation that can move stats also bumps the epoch.
    /// An explicit `ANALYZE`-style stats refresh moves the stats version
    /// *without* touching the epoch, and this check catches exactly that.
    ///
    /// A present-but-stale entry counts as an **invalidation** (and a
    /// miss); the stale plan is dropped before recompiling. `compile`
    /// runs outside the cache lock, so a slow compilation never blocks
    /// concurrent lookups; if two threads race to fill the same key, the
    /// last writer wins (both results are valid for the epoch).
    pub fn get_or_compile(
        &self,
        dataset: &str,
        text: &str,
        options: CompileOptions,
        epoch: u64,
        stats_version: impl Fn() -> u64,
        compile: impl FnOnce() -> Result<CompiledQuery, SparqlError>,
    ) -> Result<Arc<CompiledQuery>, SparqlError> {
        let key = CacheKey {
            dataset: dataset.to_string(),
            text: text.to_string(),
            options,
        };
        {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(&key) {
                Some(entry) if entry.epoch == epoch && entry.stats == stats_version() => {
                    entry.last_used = tick;
                    entry.hits += 1;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if telemetry::enabled() {
                        crate::metrics::plan_cache_hits().inc();
                    }
                    return Ok(Arc::clone(&entry.plan));
                }
                Some(_) => {
                    inner.map.remove(&key);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    if telemetry::enabled() {
                        crate::metrics::plan_cache_invalidations().inc();
                        crate::metrics::plan_cache_misses().inc();
                    }
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    if telemetry::enabled() {
                        crate::metrics::plan_cache_misses().inc();
                    }
                }
            }
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let span = telemetry::enabled().then(|| crate::metrics::compile_nanos().span());
        let plan = Arc::new(compile()?);
        drop(span);
        let stats = stats_version();
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if telemetry::enabled() {
                    crate::metrics::plan_cache_evictions().inc();
                }
            }
        }
        inner.map.insert(
            key,
            Entry {
                plan: Arc::clone(&plan),
                epoch,
                stats,
                last_used: tick,
                inserted: tick,
                hits: 0,
                actual_rows: None,
            },
        );
        Ok(plan)
    }

    /// Records the actual row count of an execution against the cached
    /// entry for `(dataset, text, options)`, so `pgrdf:sys/plans` can
    /// report estimated-vs-actual rows per plan. A no-op if the entry has
    /// since been evicted or invalidated.
    pub fn note_result(&self, dataset: &str, text: &str, options: CompileOptions, rows: u64) {
        let key = CacheKey {
            dataset: dataset.to_string(),
            text: text.to_string(),
            options,
        };
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.actual_rows = Some(rows);
        }
    }

    /// Point-in-time descriptions of every live entry, most recently
    /// used first.
    pub fn entries(&self) -> Vec<PlanCacheEntryInfo> {
        let inner = self.inner.lock().expect("plan cache poisoned");
        let tick = inner.tick;
        let mut out: Vec<(u64, PlanCacheEntryInfo)> = inner
            .map
            .iter()
            .map(|(k, e)| {
                (
                    e.last_used,
                    PlanCacheEntryInfo {
                        dataset: k.dataset.clone(),
                        text: k.text.clone(),
                        vectorize: k.options.vectorize,
                        epoch: e.epoch,
                        stats: e.stats,
                        hits: e.hits,
                        age_ticks: tick.saturating_sub(e.inserted),
                        estimated_rows: e.plan.estimated_rows(),
                        actual_rows: e.actual_rows,
                    },
                )
            })
            .collect();
        out.sort_by(|a, b| b.0.cmp(&a.0));
        out.into_iter().map(|(_, info)| info).collect()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").map.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().expect("plan cache poisoned").map.clear();
    }

    /// Lookups that returned a current-epoch plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to (re)compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Misses caused by a present-but-stale entry (store epoch moved).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Times the compile closure actually ran — the "zero parse/compile
    /// work on a hit" assertion hangs off this counter.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Current-epoch plans dropped by LRU capacity pressure (stale-epoch
    /// drops count as invalidations instead).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CForm, VarTable};

    fn dummy_plan() -> CompiledQuery {
        CompiledQuery {
            vars: VarTable::default(),
            exists: Vec::new(),
            form: CForm::Ask(crate::plan::Node::Steps(Vec::new())),
            logical: String::new(),
        }
    }

    fn opts() -> CompileOptions {
        CompileOptions::default()
    }

    #[test]
    fn hit_skips_compile() {
        let cache = PlanCache::new(4);
        for _ in 0..3 {
            cache
                .get_or_compile("m[PCSGM]", "SELECT * WHERE {}", opts(), 7, || 0, || {
                    Ok(dummy_plan())
                })
                .unwrap();
        }
        assert_eq!(cache.compiles(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.invalidations(), 0);
    }

    #[test]
    fn epoch_change_invalidates() {
        let cache = PlanCache::new(4);
        let run = |epoch| {
            cache
                .get_or_compile("m[PCSGM]", "ASK {}", opts(), epoch, || 0, || Ok(dummy_plan()))
                .unwrap()
        };
        run(1);
        run(1);
        run(2); // store mutated: recompile
        assert_eq!(cache.compiles(), 2);
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let cache = PlanCache::new(4);
        let mut forced = CompileOptions::default();
        forced.force_join = Some(crate::plan::ForcedJoin::Hash);
        cache.get_or_compile("a[PCSGM]", "ASK {}", opts(), 1, || 0, || Ok(dummy_plan())).unwrap();
        cache.get_or_compile("b[PCSGM]", "ASK {}", opts(), 1, || 0, || Ok(dummy_plan())).unwrap();
        cache.get_or_compile("a[PCSGM]", "ASK {}", forced, 1, || 0, || Ok(dummy_plan())).unwrap();
        cache.get_or_compile("a[SPCGM]", "ASK {}", opts(), 1, || 0, || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.get_or_compile("m", "q1", opts(), 1, || 0, || Ok(dummy_plan())).unwrap();
        cache.get_or_compile("m", "q2", opts(), 1, || 0, || Ok(dummy_plan())).unwrap();
        // Touch q1 so q2 becomes the LRU victim.
        cache.get_or_compile("m", "q1", opts(), 1, || 0, || Ok(dummy_plan())).unwrap();
        cache.get_or_compile("m", "q3", opts(), 1, || 0, || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.len(), 2);
        cache.get_or_compile("m", "q1", opts(), 1, || 0, || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.hits(), 2, "q1 must have survived eviction");
        cache.get_or_compile("m", "q2", opts(), 1, || 0, || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.compiles(), 4, "q2 must have been evicted and recompiled");
        assert_eq!(cache.evictions(), 2, "q2 then q3 fell to capacity pressure");
        assert_eq!(cache.invalidations(), 0, "no epoch moved in this test");
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = PlanCache::new(4);
        let err = cache.get_or_compile("m", "bad", opts(), 1, || 0, || {
            Err(SparqlError::Unsupported("nope".into()))
        });
        assert!(err.is_err());
        assert!(cache.is_empty());
        cache.get_or_compile("m", "bad", opts(), 1, || 0, || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.compiles(), 2);
    }

    #[test]
    fn stats_drift_invalidates_at_same_epoch() {
        let cache = PlanCache::new(4);
        let run = |stats: u64| {
            cache
                .get_or_compile("m", "ASK {}", opts(), 5, move || stats, || Ok(dummy_plan()))
                .unwrap()
        };
        run(10);
        run(10);
        run(11); // ANALYZE moved the stats version without an epoch bump
        assert_eq!(cache.compiles(), 2);
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn note_result_surfaces_actual_rows() {
        let cache = PlanCache::new(4);
        cache.get_or_compile("m", "ASK {}", opts(), 1, || 0, || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.entries()[0].actual_rows, None);
        cache.note_result("m", "ASK {}", opts(), 42);
        assert_eq!(cache.entries()[0].actual_rows, Some(42));
        cache.note_result("m", "other", opts(), 9); // no such entry: no-op
        assert_eq!(cache.len(), 1);
    }
}
