//! Compiled-plan cache: parse + compile once, replay the plan until the
//! store changes.
//!
//! Compiled plans bake in three kinds of store state: interned constant
//! IDs, cost-based join order/strategy decisions, and (implicitly) the
//! index set the access paths were chosen from. The cache therefore keys
//! an entry on *(dataset signature, query text, compile options)* — the
//! dataset signature includes each member model's index set — and stamps
//! it with the store's **mutation epoch** at compile time. Every store
//! mutation (DML, DDL, index changes, even dictionary interning) bumps
//! the epoch, so a lookup whose entry carries a stale epoch is treated as
//! an invalidation: the entry is dropped and the query recompiled.
//!
//! Eviction is LRU over a fixed capacity, tracked with a monotone tick —
//! no clocks, no background threads. All counters are atomics so the
//! cache can sit behind an `&self` store handle shared across threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::SparqlError;
use crate::plan::{CompileOptions, CompiledQuery};

/// Default number of cached plans (per store handle).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// Dataset/index signature (see `DatasetView::index_signature`).
    dataset: String,
    /// Full query text, byte-for-byte.
    text: String,
    /// Compile options the plan was built under.
    options: CompileOptions,
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CompiledQuery>,
    /// Store mutation epoch the plan was compiled under.
    epoch: u64,
    /// LRU tick of the last hit or insert.
    last_used: u64,
    /// LRU tick at insert (entry age = current tick − inserted).
    inserted: u64,
    /// Lookups served from this entry.
    hits: u64,
}

/// A point-in-time description of one live plan-cache entry — the
/// `pgrdf:sys/plans` system graph materializes these.
#[derive(Debug, Clone)]
pub struct PlanCacheEntryInfo {
    /// Dataset/index signature part of the key.
    pub dataset: String,
    /// Query text part of the key.
    pub text: String,
    /// Whether the plan was compiled for the vectorized pipeline.
    pub vectorize: bool,
    /// Store mutation epoch the plan was compiled under.
    pub epoch: u64,
    /// Lookups served from this entry.
    pub hits: u64,
    /// Entry age in cache ticks (lookups since insertion).
    pub age_ticks: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// A bounded, epoch-validated LRU cache of compiled query plans.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the cached plan for `(dataset, text, options)` if one
    /// exists *and* was compiled under the current `epoch`; otherwise
    /// runs `compile`, caches its result under `epoch`, and returns it.
    ///
    /// A present-but-stale entry counts as an **invalidation** (and a
    /// miss); the stale plan is dropped before recompiling. `compile`
    /// runs outside the cache lock, so a slow compilation never blocks
    /// concurrent lookups; if two threads race to fill the same key, the
    /// last writer wins (both results are valid for the epoch).
    pub fn get_or_compile(
        &self,
        dataset: &str,
        text: &str,
        options: CompileOptions,
        epoch: u64,
        compile: impl FnOnce() -> Result<CompiledQuery, SparqlError>,
    ) -> Result<Arc<CompiledQuery>, SparqlError> {
        let key = CacheKey {
            dataset: dataset.to_string(),
            text: text.to_string(),
            options,
        };
        {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(&key) {
                Some(entry) if entry.epoch == epoch => {
                    entry.last_used = tick;
                    entry.hits += 1;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if telemetry::enabled() {
                        crate::metrics::plan_cache_hits().inc();
                    }
                    return Ok(Arc::clone(&entry.plan));
                }
                Some(_) => {
                    inner.map.remove(&key);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    if telemetry::enabled() {
                        crate::metrics::plan_cache_invalidations().inc();
                        crate::metrics::plan_cache_misses().inc();
                    }
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    if telemetry::enabled() {
                        crate::metrics::plan_cache_misses().inc();
                    }
                }
            }
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let span = telemetry::enabled().then(|| crate::metrics::compile_nanos().span());
        let plan = Arc::new(compile()?);
        drop(span);
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if telemetry::enabled() {
                    crate::metrics::plan_cache_evictions().inc();
                }
            }
        }
        inner.map.insert(
            key,
            Entry { plan: Arc::clone(&plan), epoch, last_used: tick, inserted: tick, hits: 0 },
        );
        Ok(plan)
    }

    /// Point-in-time descriptions of every live entry, most recently
    /// used first.
    pub fn entries(&self) -> Vec<PlanCacheEntryInfo> {
        let inner = self.inner.lock().expect("plan cache poisoned");
        let tick = inner.tick;
        let mut out: Vec<(u64, PlanCacheEntryInfo)> = inner
            .map
            .iter()
            .map(|(k, e)| {
                (
                    e.last_used,
                    PlanCacheEntryInfo {
                        dataset: k.dataset.clone(),
                        text: k.text.clone(),
                        vectorize: k.options.vectorize,
                        epoch: e.epoch,
                        hits: e.hits,
                        age_ticks: tick.saturating_sub(e.inserted),
                    },
                )
            })
            .collect();
        out.sort_by(|a, b| b.0.cmp(&a.0));
        out.into_iter().map(|(_, info)| info).collect()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").map.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().expect("plan cache poisoned").map.clear();
    }

    /// Lookups that returned a current-epoch plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to (re)compile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Misses caused by a present-but-stale entry (store epoch moved).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Times the compile closure actually ran — the "zero parse/compile
    /// work on a hit" assertion hangs off this counter.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Current-epoch plans dropped by LRU capacity pressure (stale-epoch
    /// drops count as invalidations instead).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CForm, VarTable};

    fn dummy_plan() -> CompiledQuery {
        CompiledQuery {
            vars: VarTable::default(),
            exists: Vec::new(),
            form: CForm::Ask(crate::plan::Node::Steps(Vec::new())),
        }
    }

    fn opts() -> CompileOptions {
        CompileOptions::default()
    }

    #[test]
    fn hit_skips_compile() {
        let cache = PlanCache::new(4);
        for _ in 0..3 {
            cache
                .get_or_compile("m[PCSGM]", "SELECT * WHERE {}", opts(), 7, || Ok(dummy_plan()))
                .unwrap();
        }
        assert_eq!(cache.compiles(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.invalidations(), 0);
    }

    #[test]
    fn epoch_change_invalidates() {
        let cache = PlanCache::new(4);
        let run = |epoch| {
            cache
                .get_or_compile("m[PCSGM]", "ASK {}", opts(), epoch, || Ok(dummy_plan()))
                .unwrap()
        };
        run(1);
        run(1);
        run(2); // store mutated: recompile
        assert_eq!(cache.compiles(), 2);
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_are_distinct_entries() {
        let cache = PlanCache::new(4);
        let mut forced = CompileOptions::default();
        forced.force_join = Some(crate::plan::ForcedJoin::Hash);
        cache.get_or_compile("a[PCSGM]", "ASK {}", opts(), 1, || Ok(dummy_plan())).unwrap();
        cache.get_or_compile("b[PCSGM]", "ASK {}", opts(), 1, || Ok(dummy_plan())).unwrap();
        cache.get_or_compile("a[PCSGM]", "ASK {}", forced, 1, || Ok(dummy_plan())).unwrap();
        cache.get_or_compile("a[SPCGM]", "ASK {}", opts(), 1, || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.get_or_compile("m", "q1", opts(), 1, || Ok(dummy_plan())).unwrap();
        cache.get_or_compile("m", "q2", opts(), 1, || Ok(dummy_plan())).unwrap();
        // Touch q1 so q2 becomes the LRU victim.
        cache.get_or_compile("m", "q1", opts(), 1, || Ok(dummy_plan())).unwrap();
        cache.get_or_compile("m", "q3", opts(), 1, || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.len(), 2);
        cache.get_or_compile("m", "q1", opts(), 1, || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.hits(), 2, "q1 must have survived eviction");
        cache.get_or_compile("m", "q2", opts(), 1, || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.compiles(), 4, "q2 must have been evicted and recompiled");
        assert_eq!(cache.evictions(), 2, "q2 then q3 fell to capacity pressure");
        assert_eq!(cache.invalidations(), 0, "no epoch moved in this test");
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = PlanCache::new(4);
        let err = cache.get_or_compile("m", "bad", opts(), 1, || {
            Err(SparqlError::Unsupported("nope".into()))
        });
        assert!(err.is_err());
        assert!(cache.is_empty());
        cache.get_or_compile("m", "bad", opts(), 1, || Ok(dummy_plan())).unwrap();
        assert_eq!(cache.compiles(), 2);
    }
}
