//! SPARQL 1.1 Update execution against one semantic model.
//!
//! The paper (§2.1) observes that for DML "the key performance metric ...
//! is time taken to locate existing quads to delete, which is tied to query
//! performance" — accordingly, `DELETE/INSERT ... WHERE` runs the WHERE
//! pattern through the ordinary query pipeline, then applies the templates.

use quadstore::Store;
use rdf_model::{GraphName, Quad, Term};

use crate::ast::{GraphPattern, Query, QuadTemplate, SelectQuery, TriplePattern, Update, VarOrTerm};
use crate::error::SparqlError;
use crate::exec::{execute_compiled, QueryResults};
use crate::plan::{compile_with, CompileOptions};
use crate::results::Solutions;

/// Counters returned by update execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Quads actually inserted (not previously present).
    pub inserted: usize,
    /// Quads actually deleted (previously present).
    pub deleted: usize,
}

/// Executes an update against the named semantic model of the store.
///
/// Each update statement runs as one [`quadstore::WriteBatch`]: the WHERE
/// pattern (if any) is evaluated against the published generation first,
/// then every delete and insert of the statement is applied to a private
/// draft and published in a single atomic swap. Concurrent readers see
/// either none or all of a statement's quads — never a torn prefix.
pub fn execute_update(
    store: &Store,
    model: &str,
    update: &Update,
) -> Result<UpdateStats, SparqlError> {
    let mut stats = UpdateStats::default();
    // Evaluate WHERE clauses before taking the writer lock: reads need
    // only a pinned snapshot and must not serialize behind other writers.
    let (deletes, inserts) = match update {
        Update::InsertData(templates) => (Vec::new(), ground_quads(templates)?),
        Update::DeleteData(templates) => (ground_quads(templates)?, Vec::new()),
        Update::DeleteWhere(templates) => {
            let pattern = templates_to_pattern(templates);
            let solutions = run_pattern(store, model, &pattern)?;
            (instantiate(templates, &solutions), Vec::new())
        }
        Update::Modify { delete, insert, pattern } => {
            let solutions = run_pattern(store, model, pattern)?;
            (instantiate(delete, &solutions), instantiate(insert, &solutions))
        }
    };
    let mut batch = store.begin();
    for quad in &deletes {
        if batch.remove(model, quad)? {
            stats.deleted += 1;
        }
    }
    for quad in &inserts {
        if batch.insert(model, quad)? {
            stats.inserted += 1;
        }
    }
    batch.commit();
    Ok(stats)
}

fn run_pattern(
    store: &Store,
    model: &str,
    pattern: &GraphPattern,
) -> Result<Solutions, SparqlError> {
    let query = Query::Select(SelectQuery {
        distinct: false,
        projection: Vec::new(), // SELECT *
        pattern: pattern.clone(),
        group_by: Vec::new(),
        having: Vec::new(),
        order_by: Vec::new(),
        limit: None,
        offset: None,
    });
    let view = store.dataset(model)?;
    // Strict (non-union) graph semantics so GRAPH targeting in templates
    // matches what gets deleted/inserted.
    let compiled = compile_with(
        &view,
        &query,
        CompileOptions { union_default_graph: false, ..Default::default() },
    )?;
    match execute_compiled(&view, &compiled)? {
        QueryResults::Solutions(s) => Ok(s),
        QueryResults::Boolean(_) | QueryResults::Graph(_) => {
            unreachable!("SELECT returns solutions")
        }
    }
}

fn ground_quads(templates: &[QuadTemplate]) -> Result<Vec<Quad>, SparqlError> {
    let empty = Solutions { vars: Vec::new(), rows: vec![Vec::new()] };
    let quads = instantiate(templates, &empty);
    if quads.len() != templates.len() {
        return Err(SparqlError::Unsupported(
            "INSERT DATA / DELETE DATA require ground (variable-free) quads".into(),
        ));
    }
    Ok(quads)
}

/// Instantiates templates once per solution; template quads with unbound
/// variables or invalid term positions are skipped, per the SPARQL Update
/// semantics.
pub(crate) fn instantiate(templates: &[QuadTemplate], solutions: &Solutions) -> Vec<Quad> {
    let mut out = Vec::new();
    for row in &solutions.rows {
        let lookup = |vt: &VarOrTerm| -> Option<Term> {
            match vt {
                VarOrTerm::Term(t) => Some(t.clone()),
                VarOrTerm::Var(v) => {
                    let col = solutions.vars.iter().position(|name| name == v)?;
                    row.get(col)?.clone()
                }
            }
        };
        for template in templates {
            let (Some(s), Some(p), Some(o)) = (
                lookup(&template.subject),
                lookup(&template.predicate),
                lookup(&template.object),
            ) else {
                continue;
            };
            let graph = match &template.graph {
                None => GraphName::Default,
                Some(g) => match lookup(g) {
                    Some(t) => GraphName::Named(t),
                    None => continue,
                },
            };
            if let Ok(quad) = Quad::new(s, p, o, graph) {
                out.push(quad);
            }
        }
    }
    out
}

/// Converts delete-where templates into an equivalent WHERE pattern.
fn templates_to_pattern(templates: &[QuadTemplate]) -> GraphPattern {
    let mut default_triples = Vec::new();
    let mut graph_groups: Vec<(VarOrTerm, Vec<TriplePattern>)> = Vec::new();
    for t in templates {
        let triple = TriplePattern {
            subject: t.subject.clone(),
            predicate: match &t.predicate {
                VarOrTerm::Var(v) => crate::ast::PredicatePattern::Var(v.clone()),
                VarOrTerm::Term(Term::Iri(iri)) => {
                    crate::ast::PredicatePattern::Path(crate::ast::PropertyPath::Iri(iri.clone()))
                }
                VarOrTerm::Term(other) => {
                    // Invalid predicate: produce a pattern that cannot match.
                    crate::ast::PredicatePattern::Path(crate::ast::PropertyPath::Iri(
                        rdf_model::Iri::new(format!("urn:invalid:{other}")),
                    ))
                }
            },
            object: t.object.clone(),
        };
        match &t.graph {
            None => default_triples.push(triple),
            Some(g) => {
                if let Some((_, triples)) = graph_groups.iter_mut().find(|(gg, _)| gg == g) {
                    triples.push(triple);
                } else {
                    graph_groups.push((g.clone(), vec![triple]));
                }
            }
        }
    }
    let mut members = Vec::new();
    if !default_triples.is_empty() {
        members.push(GraphPattern::Bgp(default_triples));
    }
    for (g, triples) in graph_groups {
        members.push(GraphPattern::Graph(g, Box::new(GraphPattern::Bgp(triples))));
    }
    if members.len() == 1 {
        members.pop().expect("one member")
    } else {
        GraphPattern::Group(members, Vec::new())
    }
}
