//! The streaming query executor.
//!
//! Solutions are rows of `Option<u64>` term IDs indexed by binding slot.
//! IDs with [`COMPUTED_BIT`] set refer to query-computed terms (aggregate
//! results, `CONCAT` outputs, ...) held in a query-local side table; a
//! computed term that also exists in the store dictionary is given its
//! store ID instead, so joins and grouping treat value-equal terms as
//! equal regardless of where they came from.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use quadstore::{DatasetView, GraphConstraint, Morsel, QuadPattern};
use rdf_model::{Term, TermId};

use crate::error::SparqlError;
use crate::expr::{CExpr, ExprEnv, TermKind, Value};
use crate::path;
use crate::plan::{
    CAggregate, CForm, CGraph, CPos, CSelect, CTriple, CompiledQuery, Node, Step, Strategy,
    VarTable,
};

/// High bit marks query-computed term IDs.
pub const COMPUTED_BIT: u64 = 1 << 63;

/// A solution row: one optional term ID per binding slot.
pub type Row = Vec<Option<u64>>;

type BoxIter<'it> = Box<dyn Iterator<Item = Row> + 'it>;

/// Resource bounds on one query execution. Operators charge the context
/// for every intermediate row they produce, so a pathological query (a
/// cross product, a runaway property path) aborts with
/// [`SparqlError::ResourceExhausted`] instead of consuming unbounded
/// memory or wall-clock time.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecLimits {
    /// Abort after producing this many intermediate rows across all
    /// operators (`None` = unbounded).
    pub max_rows: Option<u64>,
    /// Abort once this instant passes (`None` = no deadline). Checked
    /// every ~1024 row charges to keep the clock off the hot path.
    pub deadline: Option<Instant>,
    /// Abort once the estimated bytes of retained intermediate state
    /// (hash-join build sides, group-by partials, sort/DISTINCT buffers,
    /// path-search frontiers, morsel output buffers) exceed this budget
    /// (`None` = fall back to the process-wide default, see
    /// [`set_default_max_memory`]; a default of zero means unbounded).
    pub max_memory: Option<u64>,
}

impl ExecLimits {
    /// A limit on intermediate rows only.
    pub fn rows(max_rows: u64) -> ExecLimits {
        ExecLimits { max_rows: Some(max_rows), ..ExecLimits::default() }
    }

    /// A deadline `timeout` from now.
    pub fn timeout(timeout: std::time::Duration) -> ExecLimits {
        ExecLimits { deadline: Some(Instant::now() + timeout), ..ExecLimits::default() }
    }

    /// A memory budget only.
    pub fn memory(bytes: u64) -> ExecLimits {
        ExecLimits { max_memory: Some(bytes), ..ExecLimits::default() }
    }

    /// Sets the memory budget on existing limits.
    pub fn with_max_memory(mut self, bytes: u64) -> Self {
        self.max_memory = Some(bytes);
        self
    }
}

/// How often (in row charges or phase ticks) the deadline and the cancel
/// token are checked.
const DEADLINE_STRIDE: u64 = 1024;

/// Process-wide default per-query memory budget in bytes (0 = none).
static DEFAULT_MAX_MEMORY: AtomicU64 = AtomicU64::new(0);

/// Sets the process-wide default per-query memory budget, applied to any
/// execution whose [`ExecLimits::max_memory`] is unset. `0` clears it.
pub fn set_default_max_memory(bytes: u64) {
    DEFAULT_MAX_MEMORY.store(bytes, Ordering::Relaxed);
}

/// The process-wide default per-query memory budget, if one is set.
pub fn default_max_memory() -> Option<u64> {
    match DEFAULT_MAX_MEMORY.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// A shareable handle that cooperatively cancels one query execution.
/// Cloning is cheap (an `Arc`); every clone observes the same flag. The
/// executor polls the token at the same strided periodic check as the
/// deadline — on the row-charge path and in the rowless phases (hash
/// builds, aggregation, path expansion) — so cancellation lands mid-morsel
/// in bounded time and surfaces as [`SparqlError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent and safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A per-query observation channel the flight recorder reads after
/// execution: peak memory charged, the resolved worker-thread count,
/// and (optionally) a span sink collecting the query's timeline.
/// Attach one via [`ExecOptions::with_observer`]; all fields are
/// written with relaxed atomics so observing a parallel execution
/// costs nothing measurable.
#[derive(Debug, Default)]
pub struct ExecObserver {
    peak_mem_bytes: AtomicU64,
    threads: AtomicU64,
    /// Span sink for the query's trace timeline (`None` = spans are
    /// not collected; memory/thread observation still happens).
    pub trace: Option<Arc<telemetry::TraceSink>>,
}

impl ExecObserver {
    /// An observer without a span sink.
    pub fn new() -> ExecObserver {
        ExecObserver::default()
    }

    /// An observer that also collects span records into `trace`.
    pub fn with_trace(trace: Arc<telemetry::TraceSink>) -> ExecObserver {
        ExecObserver { trace: Some(trace), ..ExecObserver::default() }
    }

    /// Peak estimated bytes of retained intermediate state seen by
    /// [`EvalCtx::charge_mem`] (tracked even without a memory budget).
    pub fn peak_mem_bytes(&self) -> u64 {
        self.peak_mem_bytes.load(Ordering::Relaxed)
    }

    /// Worker threads the executor resolved to (0 until execution
    /// starts).
    pub fn threads(&self) -> u32 {
        self.threads.load(Ordering::Relaxed) as u32
    }

    #[inline]
    fn note_mem(&self, total: u64) {
        self.peak_mem_bytes.fetch_max(total, Ordering::Relaxed);
    }
}

/// Default number of driving-scan rows per morsel.
pub const DEFAULT_MORSEL_SIZE: usize = 2048;

/// Default number of rows per column batch in the vectorized pipeline.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

pub(crate) mod batch;

/// Execution tuning knobs: resource limits, worker threads, morsel size.
///
/// `threads == 0` means "use [`std::thread::available_parallelism`]";
/// `threads == 1` disables the morsel-parallel executor entirely and runs
/// the legacy streaming pipeline, which is the reference for the
/// bit-identical-results guarantee.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Resource limits (row budget, memory budget, deadline).
    pub limits: ExecLimits,
    /// Worker thread count (0 = auto-detect, 1 = sequential).
    pub threads: usize,
    /// Driving-scan rows per morsel (clamped to at least 1).
    pub morsel_size: usize,
    /// Cooperative cancellation token (`None` = not cancellable).
    pub cancel: Option<CancelToken>,
    /// Use the vectorized columnar pipeline where the plan supports it
    /// (default). `false` forces the row-at-a-time pipeline everywhere —
    /// the reference oracle for the bit-identical-results guarantee.
    pub vectorize: bool,
    /// Rows per column batch in the vectorized pipeline (clamped to at
    /// least 1).
    pub batch_size: usize,
    /// Use the statistics-driven cost-based optimizer when compiling
    /// (default). `false` falls back to the heuristic greedy planner —
    /// `pgq --no-cbo` and the optimizer-equivalence tests use this.
    pub use_cbo: bool,
    /// Optional per-query observer (peak memory, resolved threads,
    /// span timeline) read by the flight recorder after execution.
    pub observer: Option<Arc<ExecObserver>>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            limits: ExecLimits::default(),
            threads: 0,
            morsel_size: DEFAULT_MORSEL_SIZE,
            cancel: None,
            vectorize: true,
            batch_size: DEFAULT_BATCH_SIZE,
            use_cbo: true,
            observer: None,
        }
    }
}

impl ExecOptions {
    /// Options with an explicit worker thread count.
    pub fn threads(n: usize) -> ExecOptions {
        ExecOptions { threads: n, ..ExecOptions::default() }
    }

    /// Options with the vectorized pipeline switched on or off.
    pub fn vectorize(on: bool) -> ExecOptions {
        ExecOptions { vectorize: on, ..ExecOptions::default() }
    }

    /// Sets the worker thread count (0 = auto).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Sets resource limits.
    pub fn with_limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the morsel size (clamped to at least 1).
    pub fn with_morsel_size(mut self, size: usize) -> Self {
        self.morsel_size = size.max(1);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Switches the vectorized pipeline on or off.
    pub fn with_vectorize(mut self, on: bool) -> Self {
        self.vectorize = on;
        self
    }

    /// Sets the column batch size (clamped to at least 1).
    pub fn with_batch_size(mut self, size: usize) -> Self {
        self.batch_size = size.max(1);
        self
    }

    /// Switches the cost-based optimizer on or off.
    pub fn with_use_cbo(mut self, on: bool) -> Self {
        self.use_cbo = on;
        self
    }

    /// Attaches a per-query observer.
    pub fn with_observer(mut self, observer: Arc<ExecObserver>) -> Self {
        self.observer = Some(observer);
        self
    }
}

/// Hash-join build side: quads keyed by join-position IDs. Keys are store
/// dictionary IDs (never attacker-controlled), so the cheap multiply-rotate
/// [`IdHasher`] replaces SipHash — the probe side runs once per input row
/// on the query's hottest path.
type BuildTable = HashMap<Vec<u64>, Vec<quadstore::EncodedQuad>, IdHashState>;

/// Read-only state shared across worker threads within one execution,
/// keyed by the address of the plan node that owns it. Each entry is
/// computed at most once (`OnceLock`) no matter how many workers race.
#[derive(Default)]
struct SharedState {
    builds: Mutex<HashMap<usize, Arc<OnceLock<BuildTable>>>>,
    rows: Mutex<HashMap<usize, Arc<OnceLock<Vec<Row>>>>>,
}

/// Per-step actuals recorded during a profiled execution: output rows,
/// input rows (loops), and inclusive time spent pulling this operator
/// (Postgres-style: includes the operators beneath it in the pipeline).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StepTally {
    /// Rows this step emitted.
    pub rows: u64,
    /// Input rows the step was probed with (1 for the driving step).
    pub loops: u64,
    /// Inclusive nanoseconds spent inside this step's `next()` calls.
    pub nanos: u64,
}

/// Accumulates [`StepTally`]s during execution, keyed by the address of
/// the plan's [`Step`]/`PathStep` — the same address-keying scheme the
/// shared hash-build cells use, valid because the profile is read back
/// while the same [`CompiledQuery`] allocation is alive.
#[derive(Debug, Default)]
pub struct ProfileState {
    tallies: Mutex<HashMap<usize, StepTally>>,
}

impl ProfileState {
    fn add(&self, key: usize, rows: u64, loops: u64, nanos: u64) {
        let mut tallies = self.tallies.lock().expect("profile state poisoned");
        let t = tallies.entry(key).or_default();
        t.rows += rows;
        t.loops += loops;
        t.nanos += nanos;
    }
}

/// The result of a profiled execution: per-step actuals plus total wall
/// time. Look up a step's tally by the same plan node reference that was
/// executed (`EXPLAIN ANALYZE` rendering does exactly that).
#[derive(Debug, Clone)]
pub struct ExecProfile {
    tallies: HashMap<usize, StepTally>,
    /// Wall-clock nanoseconds for the whole execution.
    pub wall_nanos: u64,
}

impl ExecProfile {
    /// Actuals of a BGP step, if it was reached during execution.
    pub fn step(&self, step: &Step) -> Option<StepTally> {
        self.tallies.get(&(step as *const Step as usize)).copied()
    }

    /// Actuals of a closure-path step, if it was reached.
    pub fn path(&self, pstep: &crate::plan::PathStep) -> Option<StepTally> {
        self.tallies
            .get(&(pstep as *const crate::plan::PathStep as usize))
            .copied()
    }
}

/// Evaluation context: the dataset plus the computed-terms side table.
/// All interior mutability is thread-safe so morsel workers can share one
/// context by reference.
pub struct EvalCtx {
    /// The dataset being queried.
    pub view: DatasetView,
    /// The query's variable table.
    pub vars: VarTable,
    /// Compiled EXISTS patterns (referenced by `CExpr::ExistsRef`).
    pub exists: Vec<Node>,
    computed: RwLock<Computed>,
    limits: ExecLimits,
    /// Resolved memory budget: the per-query limit, else the process-wide
    /// default at context-construction time.
    max_memory: Option<u64>,
    /// Whether the strided periodic check has anything to look at (a
    /// deadline or a cancel token) — precomputed so the row-charge hot
    /// path pays nothing when neither is configured.
    check_periodic: bool,
    cancel: Option<CancelToken>,
    threads: usize,
    morsel_size: usize,
    /// Whether the vectorized columnar pipeline may be used where the
    /// plan supports it.
    vectorize: bool,
    /// Rows per column batch in the vectorized pipeline.
    batch_size: usize,
    charged: AtomicU64,
    next_deadline_check: AtomicU64,
    /// Phase ticks from rowless work (hash builds, aggregate finalization,
    /// path expansion) — a separate counter so blocked phases get the same
    /// periodic deadline/cancel coverage without consuming the row budget.
    ticks: AtomicU64,
    next_tick_check: AtomicU64,
    /// Estimated bytes of retained intermediate state.
    mem_bytes: AtomicU64,
    exhausted_flag: AtomicBool,
    exhausted: Mutex<Option<(AbortKind, String)>>,
    shared: SharedState,
    profile: Option<Arc<ProfileState>>,
    observer: Option<Arc<ExecObserver>>,
}

/// Why an execution was aborted: a resource limit fired, or the user
/// cancelled it. Distinguished so the surfaced error is typed correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbortKind {
    Resource,
    Cancelled,
}

/// Estimated retained bytes per hash-join build-side quad (the encoded
/// quad plus its share of key and bucket overhead).
const BUILD_ROW_BYTES: u64 = 56;
/// Estimated retained bytes per newly visited path-search node (frontier,
/// visited set, and result set entries).
const PATH_NODE_BYTES: u64 = 48;
/// Estimated retained bytes per materialised output row slot.
const SLOT_BYTES: u64 = 9;
/// How many uncharged units a local accumulator may hold before it must
/// charge the shared context (mirrors `WALK_CHARGE_CHUNK`).
const MEM_CHARGE_CHUNK: u64 = 1024;

#[derive(Default)]
struct Computed {
    terms: Vec<Term>,
    ids: HashMap<Term, u64>,
}

impl EvalCtx {
    /// Creates a context for one query execution.
    pub fn new(view: DatasetView, vars: VarTable) -> Self {
        Self::with_exists(view, vars, Vec::new())
    }

    /// A context carrying compiled EXISTS patterns. Defaults to sequential
    /// execution; use [`Self::with_options`] to enable parallelism.
    pub fn with_exists(view: DatasetView, vars: VarTable, exists: Vec<Node>) -> Self {
        EvalCtx {
            view,
            vars,
            exists,
            computed: RwLock::new(Computed::default()),
            limits: ExecLimits::default(),
            max_memory: default_max_memory(),
            check_periodic: false,
            cancel: None,
            threads: 1,
            morsel_size: DEFAULT_MORSEL_SIZE,
            vectorize: true,
            batch_size: DEFAULT_BATCH_SIZE,
            charged: AtomicU64::new(0),
            next_deadline_check: AtomicU64::new(DEADLINE_STRIDE),
            ticks: AtomicU64::new(0),
            next_tick_check: AtomicU64::new(DEADLINE_STRIDE),
            mem_bytes: AtomicU64::new(0),
            exhausted_flag: AtomicBool::new(false),
            exhausted: Mutex::new(None),
            shared: SharedState::default(),
            profile: None,
            observer: None,
        }
    }

    /// Attaches a profile collector: every BGP/path step records its
    /// input rows, output rows, and inclusive time. Use with
    /// `threads == 1`; per-step attribution is only exact on the
    /// sequential pipeline ([`execute_profiled`] enforces this).
    pub fn with_profile(mut self, profile: Arc<ProfileState>) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Applies resource limits to this execution.
    pub fn with_limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self.max_memory = limits.max_memory.or_else(default_max_memory);
        self.check_periodic = limits.deadline.is_some() || self.cancel.is_some();
        if self.check_periodic {
            // A token cancelled (or a deadline expired) before execution
            // starts must abort up front — queries small enough to finish
            // within one stride would otherwise never observe it.
            self.check_now();
        }
        self
    }

    /// Applies execution options, resolving `threads == 0` to the
    /// machine's available parallelism.
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.cancel = options.cancel;
        self = self.with_limits(options.limits);
        self.threads = if options.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            options.threads
        };
        self.morsel_size = options.morsel_size.max(1);
        self.vectorize = options.vectorize;
        self.batch_size = options.batch_size.max(1);
        self.observer = options.observer;
        if let Some(obs) = &self.observer {
            obs.threads.store(self.threads as u64, Ordering::Relaxed);
        }
        self
    }

    /// The attached span sink, if an observer with tracing is present.
    #[inline]
    fn trace(&self) -> Option<&telemetry::TraceSink> {
        self.observer.as_ref().and_then(|o| o.trace.as_deref())
    }

    /// Charges `n` produced rows against the limits. Returns `false` once
    /// a limit is hit — the calling operator must stop producing rows.
    /// Exhaustion is sticky: every later charge also fails, and
    /// [`exec_select`] turns the recorded reason into an error even when
    /// an intermediate operator (e.g. a sub-select) discards it.
    pub fn charge(&self, n: u64) -> bool {
        if self.exhausted_flag.load(Ordering::Relaxed) {
            return false;
        }
        let total = self
            .charged
            .fetch_add(n, Ordering::Relaxed)
            .saturating_add(n);
        if let Some(max) = self.limits.max_rows {
            if total > max {
                self.exhaust(format!("produced more than {max} intermediate rows"));
                return false;
            }
        }
        if self.check_periodic && total >= self.next_deadline_check.load(Ordering::Relaxed) {
            self.next_deadline_check
                .store(total + DEADLINE_STRIDE, Ordering::Relaxed);
            return self.check_now();
        }
        true
    }

    /// Charges `n` units of rowless work (build-side quads scanned, groups
    /// finalized, path nodes expanded) against the periodic deadline and
    /// cancellation check *without* consuming the row budget. Phases that
    /// produce no rows route through this so they observe limits with the
    /// same stride as row-producing operators.
    pub fn tick(&self, n: u64) -> bool {
        if self.exhausted_flag.load(Ordering::Relaxed) {
            return false;
        }
        if !self.check_periodic {
            return true;
        }
        let total = self.ticks.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if total >= self.next_tick_check.load(Ordering::Relaxed) {
            self.next_tick_check
                .store(total + DEADLINE_STRIDE, Ordering::Relaxed);
            return self.check_now();
        }
        true
    }

    /// The immediate deadline/cancellation check behind the strides.
    fn check_now(&self) -> bool {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                self.exhaust_kind(AbortKind::Cancelled, "cancelled".into());
                return false;
            }
        }
        if let Some(deadline) = self.limits.deadline {
            if Instant::now() >= deadline {
                self.exhaust("deadline exceeded".into());
                return false;
            }
        }
        true
    }

    /// Charges `bytes` of retained intermediate state against the memory
    /// budget. Returns `false` (sticky, like [`Self::charge`]) once the
    /// budget is exceeded; a no-op when no budget is configured.
    pub fn charge_mem(&self, bytes: u64) -> bool {
        let Some(max) = self.max_memory else {
            // No budget to enforce, but an attached observer still wants
            // the peak; callers batch charges (MEM_CHARGE_CHUNK), so this
            // costs two relaxed atomics per chunk, not per row.
            if let Some(obs) = &self.observer {
                let total = self
                    .mem_bytes
                    .fetch_add(bytes, Ordering::Relaxed)
                    .saturating_add(bytes);
                obs.note_mem(total);
            }
            return !self.exhausted_flag.load(Ordering::Relaxed);
        };
        if self.exhausted_flag.load(Ordering::Relaxed) {
            return false;
        }
        let total = self
            .mem_bytes
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        if let Some(obs) = &self.observer {
            obs.note_mem(total);
        }
        if total > max {
            self.exhaust(format!(
                "memory budget of {max} bytes exceeded (an estimated {total} bytes of \
                 intermediate state)"
            ));
            return false;
        }
        true
    }

    /// Returns `bytes` of previously charged intermediate state to the
    /// memory budget — used by operators whose buffers are transient
    /// (column batches are freed at morsel boundaries, unlike hash builds
    /// that live for the whole query).
    pub fn release_mem(&self, bytes: u64) {
        if self.max_memory.is_some() || self.observer.is_some() {
            self.mem_bytes.fetch_sub(bytes.min(self.mem_bytes.load(Ordering::Relaxed)), Ordering::Relaxed);
        }
    }

    fn exhaust(&self, reason: String) {
        self.exhaust_kind(AbortKind::Resource, reason);
    }

    fn exhaust_kind(&self, kind: AbortKind, reason: String) {
        let mut guard = self.exhausted.lock().unwrap();
        if guard.is_none() {
            *guard = Some((kind, reason));
        }
        self.exhausted_flag.store(true, Ordering::Relaxed);
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted_flag.load(Ordering::Relaxed)
    }

    /// Why execution was aborted, if a limit was hit or it was cancelled.
    pub fn exhaustion(&self) -> Option<String> {
        self.exhausted
            .lock()
            .unwrap()
            .as_ref()
            .map(|(_, reason)| reason.clone())
    }

    /// The typed error for an aborted execution, if any: cancellation
    /// surfaces as [`SparqlError::Cancelled`], everything else as
    /// [`SparqlError::ResourceExhausted`].
    fn abort_error(&self) -> Option<SparqlError> {
        self.exhausted
            .lock()
            .unwrap()
            .as_ref()
            .map(|(kind, reason)| match kind {
                AbortKind::Cancelled => SparqlError::Cancelled,
                AbortKind::Resource => SparqlError::ResourceExhausted(reason.clone()),
            })
    }

    /// Resolves an ID (store or computed) to an owned term.
    pub fn resolve(&self, id: u64) -> Option<Term> {
        if id & COMPUTED_BIT != 0 {
            self.computed
                .read()
                .unwrap()
                .terms
                .get((id & !COMPUTED_BIT) as usize)
                .cloned()
        } else {
            self.view.term(TermId(id)).cloned()
        }
    }

    /// The kind of the term behind an ID without cloning it.
    pub fn kind(&self, id: u64) -> Option<TermKind> {
        if id & COMPUTED_BIT != 0 {
            self.computed
                .read()
                .unwrap()
                .terms
                .get((id & !COMPUTED_BIT) as usize)
                .map(TermKind::of)
        } else {
            self.view.term(TermId(id)).map(TermKind::of)
        }
    }

    /// Interns a term: store ID when the term exists in the store, else a
    /// computed ID (stable within this execution, across all workers).
    pub fn intern_term(&self, term: &Term) -> u64 {
        if let Some(id) = self.view.term_id(term) {
            return id.0;
        }
        if let Some(&id) = self.computed.read().unwrap().ids.get(term) {
            return id;
        }
        let mut computed = self.computed.write().unwrap();
        if let Some(&id) = computed.ids.get(term) {
            return id;
        }
        let id = COMPUTED_BIT | computed.terms.len() as u64;
        computed.terms.push(term.clone());
        computed.ids.insert(term.clone(), id);
        id
    }

    /// Interns a runtime value.
    pub fn intern_value(&self, value: Value) -> u64 {
        self.intern_term(&value.into_term())
    }

    fn empty_row(&self) -> Row {
        vec![None; self.vars.len()]
    }

    /// The shared hash-join build cell for a step (keyed by address).
    fn build_cell(&self, step: &Step) -> Arc<OnceLock<BuildTable>> {
        let key = step as *const Step as usize;
        self.shared
            .builds
            .lock()
            .unwrap()
            .entry(key)
            .or_default()
            .clone()
    }

    fn rows_cell(&self, key: usize) -> Arc<OnceLock<Vec<Row>>> {
        self.shared.rows.lock().unwrap().entry(key).or_default().clone()
    }

    /// A sub-select's result rows, computed once per execution (the input
    /// rows never influence them — `exec_select` starts from an empty row).
    fn shared_select_rows(&self, sel: &CSelect) -> Vec<Row> {
        let cell = self.rows_cell(sel as *const CSelect as usize);
        cell.get_or_init(|| exec_select(self, sel).unwrap_or_default())
            .clone()
    }

    /// A MINUS right side's rows, computed once per execution.
    fn shared_minus_rows(&self, inner: &Node) -> Vec<Row> {
        let cell = self.rows_cell(inner as *const Node as usize);
        cell.get_or_init(|| {
            let probe: BoxIter = Box::new(std::iter::once(self.empty_row()));
            eval_node(self, inner, probe).collect()
        })
        .clone()
    }
}

impl path::PathBudget for EvalCtx {
    /// Path expansion is a blocked phase: newly visited search nodes are
    /// retained (visited/frontier/result sets), so they charge the memory
    /// budget, and tick the periodic deadline/cancel check.
    fn path_nodes(&self, nodes: u64) -> bool {
        self.charge_mem(nodes * PATH_NODE_BYTES) && self.tick(nodes)
    }
}

/// Expression environment over one row.
pub struct RowEnv<'a> {
    ctx: &'a EvalCtx,
    row: &'a Row,
    aggs: Option<&'a [Value]>,
}

impl ExprEnv for RowEnv<'_> {
    fn term_of_slot(&self, slot: usize) -> Option<Term> {
        self.row.get(slot).copied().flatten().and_then(|id| self.ctx.resolve(id))
    }
    fn id_of_slot(&self, slot: usize) -> Option<u64> {
        self.row.get(slot).copied().flatten()
    }
    fn kind_of_slot(&self, slot: usize) -> Option<TermKind> {
        self.row
            .get(slot)
            .copied()
            .flatten()
            .and_then(|id| self.ctx.kind(id))
    }
    fn aggregate_value(&self, index: usize) -> Option<Value> {
        self.aggs.and_then(|a| a.get(index).cloned())
    }
    fn exists(&self, index: usize) -> Option<bool> {
        let node = self.ctx.exists.get(index)?;
        let input: Box<dyn Iterator<Item = Row>> =
            Box::new(std::iter::once(self.row.clone()));
        Some(eval_node(self.ctx, node, input).next().is_some())
    }
}

/// Final results of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResults {
    /// SELECT solutions.
    Solutions(crate::results::Solutions),
    /// ASK verdict.
    Boolean(bool),
    /// CONSTRUCT output: deduplicated, sorted quads.
    Graph(Vec<rdf_model::Quad>),
}

/// Executes a compiled query against a dataset view with default options
/// (auto-detected parallelism, no resource limits).
pub fn execute_compiled(
    view: &DatasetView,
    compiled: &CompiledQuery,
) -> Result<QueryResults, SparqlError> {
    execute_compiled_with_options(view, compiled, ExecOptions::default())
}

/// Executes a compiled query under resource limits: exceeding the row
/// budget or the deadline aborts with [`SparqlError::ResourceExhausted`].
pub fn execute_compiled_with_limits(
    view: &DatasetView,
    compiled: &CompiledQuery,
    limits: ExecLimits,
) -> Result<QueryResults, SparqlError> {
    execute_compiled_with_options(view, compiled, ExecOptions::default().with_limits(limits))
}

/// Executes a compiled query with explicit execution options. With
/// `threads > 1` (or auto-detected parallelism on a multi-core machine)
/// eligible plans run on the morsel-parallel executor; results are
/// guaranteed identical to `threads == 1` sequential execution.
pub fn execute_compiled_with_options(
    view: &DatasetView,
    compiled: &CompiledQuery,
    options: ExecOptions,
) -> Result<QueryResults, SparqlError> {
    let ctx = EvalCtx::with_exists(
        view.clone(),
        compiled.vars.clone(),
        compiled.exists.clone(),
    )
    .with_options(options);
    execute_with_ctx(&ctx, compiled)
}

/// Executes a compiled query with per-step profiling: returns the
/// results plus an [`ExecProfile`] holding each BGP/path step's actual
/// rows, loops, and inclusive time. Profiling forces `threads == 1`
/// (the sequential reference pipeline) so that per-step attribution is
/// exact; results are identical to any thread count by the executor's
/// equivalence guarantee.
pub fn execute_profiled(
    view: &DatasetView,
    compiled: &CompiledQuery,
    options: ExecOptions,
) -> Result<(QueryResults, ExecProfile), SparqlError> {
    let start = Instant::now();
    let profile = Arc::new(ProfileState::default());
    let options = ExecOptions { threads: 1, ..options };
    let ctx = EvalCtx::with_exists(
        view.clone(),
        compiled.vars.clone(),
        compiled.exists.clone(),
    )
    .with_options(options)
    .with_profile(Arc::clone(&profile));
    let results = execute_with_ctx(&ctx, compiled)?;
    drop(ctx); // flush any iterator tallies still alive in the context
    let tallies = profile.tallies.lock().expect("profile state poisoned").clone();
    Ok((results, ExecProfile { tallies, wall_nanos: start.elapsed().as_nanos() as u64 }))
}

fn execute_with_ctx(ctx: &EvalCtx, compiled: &CompiledQuery) -> Result<QueryResults, SparqlError> {
    match &compiled.form {
        CForm::Select(sel) => {
            let rows = exec_select(ctx, sel)?;
            let emit_started = ctx.trace().map(|t| t.now_nanos());
            let slots = sel.projected_slots();
            let vars: Vec<String> = slots
                .iter()
                .map(|&s| ctx.vars.name(s).to_string())
                .collect();
            let decoded: Vec<Vec<Option<Term>>> = rows
                .into_iter()
                .map(|row| {
                    slots
                        .iter()
                        .map(|&s| row[s].and_then(|id| ctx.resolve(id)))
                        .collect()
                })
                .collect();
            if let (Some(t), Some(started)) = (ctx.trace(), emit_started) {
                t.record("emit", format!("{} rows", decoded.len()), 0, started);
            }
            Ok(QueryResults::Solutions(crate::results::Solutions { vars, rows: decoded }))
        }
        CForm::Ask(node) => {
            let input: BoxIter = Box::new(std::iter::once(ctx.empty_row()));
            let mut out = eval_node(ctx, node, input);
            let answer = out.next().is_some();
            if let Some(err) = ctx.abort_error() {
                return Err(err);
            }
            Ok(QueryResults::Boolean(answer))
        }
        CForm::Construct(templates, sel) => {
            let rows = exec_select(ctx, sel)?;
            let slots = sel.projected_slots();
            let vars: Vec<String> = slots
                .iter()
                .map(|&s| ctx.vars.name(s).to_string())
                .collect();
            let decoded: Vec<Vec<Option<Term>>> = rows
                .into_iter()
                .map(|row| {
                    slots
                        .iter()
                        .map(|&s| row[s].and_then(|id| ctx.resolve(id)))
                        .collect()
                })
                .collect();
            let solutions = crate::results::Solutions { vars, rows: decoded };
            let mut quads = crate::update::instantiate(templates, &solutions);
            quads.sort();
            quads.dedup();
            Ok(QueryResults::Graph(quads))
        }
    }
}

/// Evaluates a SELECT pipeline, returning full-width rows (all slots).
pub fn exec_select(ctx: &EvalCtx, sel: &CSelect) -> Result<Vec<Row>, SparqlError> {
    let mut rows: Vec<Row> = if sel.is_grouped() {
        grouped_rows(ctx, sel)?
    } else {
        let mut rows: Vec<Row> = if ctx.threads > 1 {
            par_produce(ctx, sel)
        } else if let Some(rows) = batch::vec_produce(ctx, sel) {
            rows
        } else {
            // Streaming reference path. The result buffer is retained
            // state like any other: charge it in chunks so a wide scan
            // cannot silently exceed the memory budget between operators.
            let input: BoxIter = Box::new(std::iter::once(ctx.empty_row()));
            let row_bytes = ctx.vars.len() as u64 * SLOT_BYTES + 32;
            let mut rows: Vec<Row> = Vec::new();
            let mut pending: u64 = 0;
            for row in eval_node(ctx, &sel.root, input) {
                rows.push(row);
                pending += 1;
                if pending >= MEM_CHARGE_CHUNK {
                    if !ctx.charge_mem(pending * row_bytes) {
                        break;
                    }
                    pending = 0;
                }
            }
            if pending > 0 {
                let _ = ctx.charge_mem(pending * row_bytes);
            }
            rows
        };
        // Compute expression projections per row.
        for proj in &sel.projection {
            if let Some(expr) = &proj.expr {
                for row in &mut rows {
                    let env = RowEnv { ctx, row, aggs: None };
                    let value = expr.eval(&env);
                    row[proj.slot] = value.map(|v| ctx.intern_value(v));
                }
            }
        }
        rows
    };

    // A limit hit anywhere below — including inside a sub-select whose
    // error was discarded — surfaces here rather than as silently
    // truncated results.
    if let Some(err) = ctx.abort_error() {
        return Err(err);
    }

    if !sel.order_by.is_empty() {
        // The sort buffer holds every row plus its evaluated keys; charge
        // it up front so a pathological ORDER BY aborts before the
        // materialisation, not after.
        let key_bytes = (sel.order_by.len() as u64).max(1) * 32;
        if !ctx.charge_mem(rows.len() as u64 * key_bytes) {
            return Err(ctx.abort_error().expect("charge_mem failure records a reason"));
        }
        let mut keyed: Vec<(Vec<Option<Value>>, Row)> = rows
            .into_iter()
            .map(|row| {
                let keys = sel
                    .order_by
                    .iter()
                    .map(|(expr, _)| {
                        let env = RowEnv { ctx, row: &row, aggs: None };
                        expr.eval(&env)
                    })
                    .collect();
                (keys, row)
            })
            .collect();
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, (_, desc)) in sel.order_by.iter().enumerate() {
                let ord = match (&ka[i], &kb[i]) {
                    (Some(a), Some(b)) => a.sparql_cmp(b),
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (None, None) => std::cmp::Ordering::Equal,
                };
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = keyed.into_iter().map(|(_, row)| row).collect();
    }

    // Narrow rows to projected slots (for DISTINCT and sub-select reuse).
    let slots = sel.projected_slots();
    let mut projected: Vec<Row> = rows
        .into_iter()
        .map(|row| {
            let mut out = ctx.empty_row();
            for &s in &slots {
                out[s] = row[s];
            }
            out
        })
        .collect();

    if sel.distinct {
        let mut seen = HashSet::new();
        let key_bytes = slots.len() as u64 * SLOT_BYTES + 48;
        let mut over_budget = false;
        projected.retain(|row| {
            let key: Vec<Option<u64>> = slots.iter().map(|&s| row[s]).collect();
            let fresh = seen.insert(key);
            if fresh && !ctx.charge_mem(key_bytes) {
                over_budget = true;
            }
            fresh
        });
        if over_budget {
            return Err(ctx.abort_error().expect("charge_mem failure records a reason"));
        }
    }

    let offset = sel.offset.unwrap_or(0);
    if offset > 0 {
        projected = projected.into_iter().skip(offset).collect();
    }
    if let Some(limit) = sel.limit {
        projected.truncate(limit);
    }
    Ok(projected)
}

enum Acc {
    CountAll(u64),
    Count(u64),
    CountDistinct(HashSet<u64>),
    Sum { int: i64, float: f64, any_float: bool, seen: bool },
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(agg: &CAggregate) -> Acc {
        match agg {
            CAggregate::CountAll => Acc::CountAll(0),
            CAggregate::Count { distinct: true, .. } => Acc::CountDistinct(HashSet::new()),
            CAggregate::Count { .. } => Acc::Count(0),
            CAggregate::Sum(_) => Acc::Sum { int: 0, float: 0.0, any_float: false, seen: false },
            CAggregate::Avg(_) => Acc::Avg { sum: 0.0, n: 0 },
            CAggregate::Min(_) => Acc::Min(None),
            CAggregate::Max(_) => Acc::Max(None),
        }
    }

    fn update(&mut self, ctx: &EvalCtx, agg: &CAggregate, row: &Row) {
        let eval = |expr: &CExpr| {
            let env = RowEnv { ctx, row, aggs: None };
            expr.eval(&env)
        };
        match (self, agg) {
            (Acc::CountAll(n), _) => *n += 1,
            (Acc::Count(n), CAggregate::Count { expr, .. }) => {
                if eval(expr).is_some() {
                    *n += 1;
                }
            }
            (Acc::CountDistinct(set), CAggregate::Count { expr, .. }) => {
                if let Some(v) = eval(expr) {
                    if set.insert(ctx.intern_value(v)) {
                        // Sticky on failure; the operator loop above
                        // notices via its own charges or the final check.
                        let _ = ctx.charge_mem(16);
                    }
                }
            }
            (Acc::Sum { int, float, any_float, seen }, CAggregate::Sum(expr)) => {
                if let Some(v) = eval(expr) {
                    match v {
                        Value::Int(i) => *int += i,
                        other => {
                            if let Some(f) = other.as_number() {
                                *float += f;
                                *any_float = true;
                            } else {
                                return;
                            }
                        }
                    }
                    *seen = true;
                }
            }
            (Acc::Avg { sum, n }, CAggregate::Avg(expr)) => {
                if let Some(f) = eval(expr).and_then(|v| v.as_number()) {
                    *sum += f;
                    *n += 1;
                }
            }
            (Acc::Min(best), CAggregate::Min(expr)) => {
                if let Some(v) = eval(expr) {
                    let replace = best
                        .as_ref()
                        .map(|b| v.sparql_cmp(b) == std::cmp::Ordering::Less)
                        .unwrap_or(true);
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            (Acc::Max(best), CAggregate::Max(expr)) => {
                if let Some(v) = eval(expr) {
                    let replace = best
                        .as_ref()
                        .map(|b| v.sparql_cmp(b) == std::cmp::Ordering::Greater)
                        .unwrap_or(true);
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            _ => unreachable!("accumulator/aggregate mismatch"),
        }
    }

    fn finish(self) -> Option<Value> {
        match self {
            Acc::CountAll(n) | Acc::Count(n) => Some(Value::Int(n as i64)),
            Acc::CountDistinct(set) => Some(Value::Int(set.len() as i64)),
            Acc::Sum { int, float, any_float, seen } => {
                if !seen {
                    Some(Value::Int(0))
                } else if any_float {
                    Some(Value::Float(float + int as f64))
                } else {
                    Some(Value::Int(int))
                }
            }
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Some(Value::Int(0))
                } else {
                    Some(Value::Float(sum / n as f64))
                }
            }
            Acc::Min(v) | Acc::Max(v) => v,
        }
    }
}

/// Produces the grouped rows of a grouped SELECT, choosing between the
/// parallel fused-aggregation path, ordered parallel production feeding
/// the sequential aggregation loop, and the legacy streaming path.
fn grouped_rows(ctx: &EvalCtx, sel: &CSelect) -> Result<Vec<Row>, SparqlError> {
    // The fused path also serves sequential vectorized execution: at
    // `threads == 1` the morsel loop runs on the calling thread and the
    // vectorized pipeline accumulates groups straight from column
    // batches. Profiled runs stay on the streaming path, whose per-step
    // attribution is the reference.
    if ctx.threads > 1 || (ctx.vectorize && ctx.profile.is_none()) {
        // Fused path: aggregate inside the morsel workers and merge
        // partial groups. Only when every aggregate merges losslessly.
        if let Some(partial) = par_grouped(ctx, sel) {
            // One pass per final group to rehash into the std map the
            // finaliser takes — negligible next to the per-row work.
            let groups = partial.groups.into_iter().collect();
            return finalize_groups(ctx, sel, groups, partial.saw_rows);
        }
        // Ordered path: produce rows in exact sequential order (parallel
        // where the plan allows), then run the unchanged aggregation loop.
        if ctx.threads > 1 || ctx.vectorize {
            let rows = par_produce(ctx, sel);
            return group_and_aggregate(ctx, sel, Box::new(rows.into_iter()));
        }
    }
    let input: BoxIter = Box::new(std::iter::once(ctx.empty_row()));
    let solutions = eval_node(ctx, &sel.root, input);
    group_and_aggregate(ctx, sel, solutions)
}

/// Estimated retained bytes for one group-by partial: the key vector plus
/// one accumulator per aggregate (distinct-sets grow beyond this and
/// charge separately per element).
fn group_mem_bytes(sel: &CSelect) -> u64 {
    48 + sel.group_slots.len() as u64 * SLOT_BYTES + sel.aggregates.len() as u64 * 48
}

fn group_and_aggregate(
    ctx: &EvalCtx,
    sel: &CSelect,
    solutions: BoxIter<'_>,
) -> Result<Vec<Row>, SparqlError> {
    let mut groups: HashMap<Vec<Option<u64>>, Vec<Acc>> = HashMap::new();
    let make_accs = || sel.aggregates.iter().map(Acc::new).collect::<Vec<_>>();
    let group_bytes = group_mem_bytes(sel);
    let mut saw_rows = false;
    for row in solutions {
        saw_rows = true;
        let key: Vec<Option<u64>> = sel.group_slots.iter().map(|&s| row[s]).collect();
        let before = groups.len();
        let accs = groups.entry(key).or_insert_with(make_accs);
        for (acc, agg) in accs.iter_mut().zip(&sel.aggregates) {
            acc.update(ctx, agg, &row);
        }
        // Group-by partials are retained state: each fresh group charges
        // the memory budget, and an exceeded budget stops consuming input.
        if groups.len() > before && !ctx.charge_mem(group_bytes) {
            break;
        }
    }
    finalize_groups(ctx, sel, groups, saw_rows)
}

/// Turns accumulated groups into output rows: default group for zero-row
/// ungrouped aggregation, projection expressions, and HAVING.
fn finalize_groups(
    ctx: &EvalCtx,
    sel: &CSelect,
    mut groups: HashMap<Vec<Option<u64>>, Vec<Acc>>,
    saw_rows: bool,
) -> Result<Vec<Row>, SparqlError> {
    let make_accs = || sel.aggregates.iter().map(Acc::new).collect::<Vec<_>>();
    // SPARQL: aggregation without GROUP BY over zero rows yields one group.
    if !saw_rows && sel.group_slots.is_empty() {
        groups.insert(Vec::new(), make_accs());
    }

    let mut out = Vec::with_capacity(groups.len());
    for (key, accs) in groups {
        // Finalization charges no rows; tick so a deadline or cancel
        // lands inside a huge group sweep too.
        if !ctx.tick(1) {
            break;
        }
        let agg_values: Vec<Value> = accs
            .into_iter()
            .map(|a| a.finish().unwrap_or(Value::Int(0)))
            .collect();
        let mut row = ctx.empty_row();
        for (slot, v) in sel.group_slots.iter().zip(&key) {
            row[*slot] = *v;
        }
        for proj in &sel.projection {
            if let Some(expr) = &proj.expr {
                let env = RowEnv { ctx, row: &row, aggs: Some(&agg_values) };
                row[proj.slot] = expr.eval(&env).map(|v| ctx.intern_value(v));
            } else if !sel.group_slots.contains(&proj.slot) {
                return Err(SparqlError::Unsupported(format!(
                    "variable ?{} projected out of a grouped query but not in GROUP BY",
                    ctx.vars.name(proj.slot)
                )));
            }
        }
        // HAVING: post-aggregation filter (projection aliases like the
        // `?n` of `HAVING (?n > 1)` are in scope by now).
        let keep = sel.having.iter().all(|h| {
            let env = RowEnv { ctx, row: &row, aggs: Some(&agg_values) };
            h.eval_filter(&env)
        });
        if !keep {
            continue;
        }
        out.push(row);
    }
    Ok(out)
}

/// Evaluates one compiled node, streaming input rows through it.
pub fn eval_node<'it>(ctx: &'it EvalCtx, node: &'it Node, input: BoxIter<'it>) -> BoxIter<'it> {
    match node {
        Node::Steps(steps) => {
            let mut stream = input;
            for step in steps {
                stream = eval_step(ctx, step, stream);
            }
            stream
        }
        Node::Path(pstep) => {
            let key = pstep as *const crate::plan::PathStep as usize;
            let input = profile_input(ctx, key, input);
            let out: BoxIter = Box::new(input.flat_map(move |row| {
                let s_val = pos_value(&row, &pstep.s);
                let o_val = pos_value(&row, &pstep.o);
                // Computed IDs never match stored quads.
                let bad = |v: &Option<Option<u64>>| matches!(v, Some(None));
                if bad(&s_val) || bad(&o_val) {
                    return Vec::new().into_iter();
                }
                let pairs = path::eval_path_pairs_with(
                    &ctx.view,
                    &pstep.path,
                    pstep.graph,
                    s_val.flatten(),
                    o_val.flatten(),
                    ctx,
                );
                let mut out = Vec::new();
                for (s, o) in pairs {
                    let mut new_row = row.clone();
                    if extend_pos(&mut new_row, &pstep.s, s) && extend_pos(&mut new_row, &pstep.o, o) {
                        if !ctx.charge(1) {
                            break;
                        }
                        out.push(new_row);
                    }
                }
                out.into_iter()
            }));
            profile_output(ctx, key, out)
        }
        Node::Join(children) => {
            let mut stream = input;
            for child in children {
                stream = eval_node(ctx, child, stream);
            }
            stream
        }
        Node::Filter(filters, inner) => {
            let stream = eval_node(ctx, inner, input);
            Box::new(stream.filter(move |row| {
                filters.iter().all(|f| {
                    let env = RowEnv { ctx, row, aggs: None };
                    f.eval_filter(&env)
                })
            }))
        }
        Node::Union(a, b) => {
            let rows: Vec<Row> = input.collect();
            let left: BoxIter = Box::new(rows.clone().into_iter());
            let right: BoxIter = Box::new(rows.into_iter());
            Box::new(eval_node(ctx, a, left).chain(eval_node(ctx, b, right)))
        }
        Node::Optional(a, b) => {
            let left = eval_node(ctx, a, input);
            Box::new(left.flat_map(move |row| {
                let probe: BoxIter = Box::new(std::iter::once(row.clone()));
                let matches: Vec<Row> = eval_node(ctx, b, probe).collect();
                if matches.is_empty() {
                    vec![row].into_iter()
                } else {
                    matches.into_iter()
                }
            }))
        }
        Node::SubSelect(sel) => {
            let inner = ctx.shared_select_rows(sel);
            let input_rows: Vec<Row> = input.collect();
            let slots = sel.projected_slots();
            // Join keys: projected slots bound in every input row.
            let join_slots: Vec<usize> = slots
                .iter()
                .copied()
                .filter(|&s| !input_rows.is_empty() && input_rows.iter().all(|r| r[s].is_some()))
                .collect();
            let mut table: HashMap<Vec<u64>, Vec<Row>> = HashMap::new();
            for irow in inner {
                let key: Option<Vec<u64>> = join_slots.iter().map(|&s| irow[s]).collect();
                if let Some(key) = key {
                    table.entry(key).or_default().push(irow);
                }
            }
            Box::new(input_rows.into_iter().flat_map(move |row| {
                let key: Vec<u64> = join_slots
                    .iter()
                    .map(|&s| row[s].expect("join slot bound in all input rows"))
                    .collect();
                let mut out = Vec::new();
                if let Some(matches) = table.get(&key) {
                    'outer: for m in matches {
                        let mut merged = row.clone();
                        for &s in &slots {
                            match (merged[s], m[s]) {
                                (Some(a), Some(b)) if a != b => continue 'outer,
                                (None, b) => merged[s] = b,
                                _ => {}
                            }
                        }
                        out.push(merged);
                    }
                }
                out.into_iter()
            }))
        }
        Node::Values { slots, rows } => {
            let resolved: Vec<Vec<Option<u64>>> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|t| t.as_ref().map(|t| ctx.intern_term(t)))
                        .collect()
                })
                .collect();
            let slots = slots.clone();
            Box::new(input.flat_map(move |row| {
                let mut out = Vec::new();
                'rows: for vrow in &resolved {
                    let mut merged = row.clone();
                    for (&slot, value) in slots.iter().zip(vrow) {
                        if let Some(v) = value {
                            match merged[slot] {
                                Some(existing) if existing != *v => continue 'rows,
                                _ => merged[slot] = Some(*v),
                            }
                        }
                    }
                    out.push(merged);
                }
                out.into_iter()
            }))
        }
        Node::Extend(slot, expr) => {
            let slot = *slot;
            Box::new(input.map(move |mut row| {
                let value = {
                    let env = RowEnv { ctx, row: &row, aggs: None };
                    expr.eval(&env)
                };
                // Per SPARQL, a BIND error leaves the variable unbound; a
                // conflict with an existing binding drops nothing here
                // because the parser guarantees a fresh variable.
                row[slot] = value.map(|v| ctx.intern_value(v));
                row
            }))
        }
        Node::Minus(inner) => {
            // MINUS: evaluate the inner pattern bottom-up once, then drop
            // input rows that are compatible with (and share at least one
            // bound variable with) some inner solution.
            let right: Vec<Row> = ctx.shared_minus_rows(inner);
            Box::new(input.filter(move |row| {
                !right.iter().any(|r| {
                    let mut shared = false;
                    for (a, b) in row.iter().zip(r.iter()) {
                        if let (Some(x), Some(y)) = (a, b) {
                            if x != y {
                                return false;
                            }
                            shared = true;
                        }
                    }
                    shared
                })
            }))
        }
    }
}

/// Counts rows flowing *into* a profiled step (its loop count) and
/// flushes once on drop.
struct ProfileLoops<'it> {
    inner: BoxIter<'it>,
    profile: Arc<ProfileState>,
    key: usize,
    loops: u64,
}

impl Iterator for ProfileLoops<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        let item = self.inner.next();
        if item.is_some() {
            self.loops += 1;
        }
        item
    }
}

impl Drop for ProfileLoops<'_> {
    fn drop(&mut self) {
        self.profile.add(self.key, 0, self.loops, 0);
    }
}

/// Counts and times rows flowing *out of* a profiled step. Each `next()`
/// is clocked, so the recorded time is inclusive of the steps beneath
/// this one in the pull pipeline; flushes once on drop.
struct ProfileRows<'it> {
    inner: BoxIter<'it>,
    profile: Arc<ProfileState>,
    key: usize,
    rows: u64,
    nanos: u64,
}

impl Iterator for ProfileRows<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        let start = Instant::now();
        let item = self.inner.next();
        self.nanos += start.elapsed().as_nanos() as u64;
        if item.is_some() {
            self.rows += 1;
        }
        item
    }
}

impl Drop for ProfileRows<'_> {
    fn drop(&mut self) {
        self.profile.add(self.key, self.rows, 0, self.nanos);
    }
}

/// Wraps a profiled step's input with a loop counter (no-op without an
/// attached profile).
fn profile_input<'it>(ctx: &'it EvalCtx, key: usize, input: BoxIter<'it>) -> BoxIter<'it> {
    match &ctx.profile {
        Some(p) => Box::new(ProfileLoops { inner: input, profile: Arc::clone(p), key, loops: 0 }),
        None => input,
    }
}

/// Wraps a profiled step's output with a row counter + timer (no-op
/// without an attached profile).
fn profile_output<'it>(ctx: &'it EvalCtx, key: usize, out: BoxIter<'it>) -> BoxIter<'it> {
    match &ctx.profile {
        Some(p) => Box::new(ProfileRows {
            inner: out,
            profile: Arc::clone(p),
            key,
            rows: 0,
            nanos: 0,
        }),
        None => out,
    }
}

fn eval_step<'it>(ctx: &'it EvalCtx, step: &'it Step, input: BoxIter<'it>) -> BoxIter<'it> {
    let key = step as *const Step as usize;
    let input = profile_input(ctx, key, input);
    let out = eval_step_inner(ctx, step, input);
    profile_output(ctx, key, out)
}

fn eval_step_inner<'it>(ctx: &'it EvalCtx, step: &'it Step, input: BoxIter<'it>) -> BoxIter<'it> {
    match &step.strategy {
        Strategy::IndexNlj => Box::new(input.flat_map(move |row| {
            let mut out = Vec::new();
            if let Some(pattern) = probe_pattern(&row, &step.triple) {
                for quad in ctx.view.scan(pattern) {
                    if let Some(new_row) = extend_row(&row, &step.triple, &quad) {
                        if !ctx.charge(1) {
                            break;
                        }
                        out.push(new_row);
                    }
                }
            }
            out.into_iter()
        })),
        Strategy::HashJoin { join_slots } => {
            Box::new(HashJoinIter::new(ctx, step, join_slots, input))
        }
    }
}

/// Builds a hash-join build side: the step's pattern scanned with
/// constants only, keyed by the join positions.
fn build_table(ctx: &EvalCtx, step: &Step, join_slots: &[usize]) -> BuildTable {
    let mut table = BuildTable::default();
    let mut rows = 0u64;
    if !step.triple.unsatisfiable() {
        let positions = key_positions(&step.triple, join_slots);
        let row_bytes = BUILD_ROW_BYTES + positions.len() as u64 * 8;
        for quad in ctx.view.scan(step.triple.const_pattern()) {
            let key: Vec<u64> = positions.iter().map(|&p| quad[p]).collect();
            table.entry(key).or_default().push(quad);
            rows += 1;
            // Build sides charge no rows, so route this blocked phase
            // through the periodic deadline/cancel check and the memory
            // budget in chunks — one atomic op per chunk, not per quad.
            if rows % MEM_CHARGE_CHUNK == 0
                && (!ctx.tick(MEM_CHARGE_CHUNK) || !ctx.charge_mem(MEM_CHARGE_CHUNK * row_bytes))
            {
                return table;
            }
        }
        let rem = rows % MEM_CHARGE_CHUNK;
        if rem > 0 {
            let _ = ctx.tick(rem) && ctx.charge_mem(rem * row_bytes);
        }
    }
    if telemetry::enabled() {
        crate::metrics::hash_build_rows().record(rows);
    }
    table
}

/// Lazily-built hash join: the build side is materialised into a hash
/// table on first use — at most once per execution, shared across every
/// worker and re-evaluation of the step — then probed per input row.
struct HashJoinIter<'it> {
    ctx: &'it EvalCtx,
    step: &'it Step,
    join_slots: &'it [usize],
    input: BoxIter<'it>,
    cell: Arc<OnceLock<BuildTable>>,
    pending: std::vec::IntoIter<Row>,
}

impl<'it> HashJoinIter<'it> {
    fn new(
        ctx: &'it EvalCtx,
        step: &'it Step,
        join_slots: &'it [usize],
        input: BoxIter<'it>,
    ) -> Self {
        let cell = ctx.build_cell(step);
        HashJoinIter { ctx, step, join_slots, input, cell, pending: Vec::new().into_iter() }
    }
}

impl Iterator for HashJoinIter<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(row) = self.pending.next() {
                return Some(row);
            }
            let row = self.input.next()?;
            // Join keys are usually bound — but OPTIONAL/VALUES can leave a
            // planned-bound slot UNDEF at runtime. A row with a computed ID
            // in a join slot can never match stored quads; a row with an
            // unbound slot falls back to a per-row index scan (NLJ-style).
            if self
                .join_slots
                .iter()
                .any(|&s| matches!(row[s], Some(id) if id & COMPUTED_BIT != 0))
            {
                continue;
            }
            if self.join_slots.iter().any(|&s| row[s].is_none()) {
                if let Some(pattern) = probe_pattern(&row, &self.step.triple) {
                    let mut out = Vec::new();
                    for quad in self.ctx.view.scan(pattern) {
                        if let Some(new_row) = extend_row(&row, &self.step.triple, &quad) {
                            if !self.ctx.charge(1) {
                                return None;
                            }
                            out.push(new_row);
                        }
                    }
                    self.pending = out.into_iter();
                }
                continue;
            }
            let key: Vec<u64> = self
                .join_slots
                .iter()
                .map(|&s| row[s].expect("checked above"))
                .collect();
            let (ctx, step, join_slots) = (self.ctx, self.step, self.join_slots);
            let table = self.cell.get_or_init(|| build_table(ctx, step, join_slots));
            if let Some(quads) = table.get(&key) {
                let mut out = Vec::with_capacity(quads.len());
                for quad in quads {
                    if let Some(new_row) = extend_row(&row, &self.step.triple, quad) {
                        if !self.ctx.charge(1) {
                            return None;
                        }
                        out.push(new_row);
                    }
                }
                self.pending = out.into_iter();
            }
        }
    }
}

/// The quad position each join slot is keyed on (first occurrence).
fn key_positions(triple: &CTriple, join_slots: &[usize]) -> Vec<usize> {
    join_slots
        .iter()
        .map(|&slot| {
            if triple.s.slot() == Some(slot) {
                quadstore::ids::S
            } else if triple.p.slot() == Some(slot) {
                quadstore::ids::P
            } else if triple.o.slot() == Some(slot) {
                quadstore::ids::O
            } else if matches!(triple.g, CGraph::Var(g) if g == slot) {
                quadstore::ids::G
            } else {
                unreachable!("join slot not in triple")
            }
        })
        .collect()
}

/// The value a position contributes given a row: `None` = unbound,
/// `Some(None)` = bound to something that cannot match stored quads
/// (a missing constant or computed ID), `Some(Some(id))` = bound.
fn pos_value(row: &Row, pos: &CPos) -> Option<Option<u64>> {
    match pos {
        CPos::Var(slot) => row[*slot].map(|id| {
            if id & COMPUTED_BIT != 0 {
                None
            } else {
                Some(id)
            }
        }),
        CPos::Const(_, Some(id)) => Some(Some(id.0)),
        CPos::Const(_, None) => Some(None),
    }
}

/// The scan pattern for a probe with the given row; `None` means the probe
/// cannot match anything.
fn probe_pattern(row: &Row, triple: &CTriple) -> Option<QuadPattern> {
    let resolve = |pos: &CPos| -> Result<Option<TermId>, ()> {
        match pos_value(row, pos) {
            None => Ok(None),
            Some(Some(id)) => Ok(Some(TermId(id))),
            Some(None) => Err(()),
        }
    };
    let s = resolve(&triple.s).ok()?;
    let p = resolve(&triple.p).ok()?;
    let o = resolve(&triple.o).ok()?;
    let g = match &triple.g {
        CGraph::Any => GraphConstraint::Any,
        CGraph::Default => GraphConstraint::DefaultOnly,
        CGraph::Const(_, Some(id)) => GraphConstraint::Named(*id),
        CGraph::Const(_, None) => return None,
        CGraph::Var(slot) => match row[*slot] {
            Some(id) if id & COMPUTED_BIT != 0 => return None,
            Some(id) => GraphConstraint::Named(TermId(id)),
            None => GraphConstraint::AnyNamed,
        },
    };
    Some(QuadPattern { s, p, o, g })
}

/// Extends a row with a matched quad, checking consistency for slots that
/// are already bound (repeated variables, join keys).
fn extend_row(row: &Row, triple: &CTriple, quad: &quadstore::EncodedQuad) -> Option<Row> {
    let mut new_row = row.clone();
    let mut set = |slot: usize, value: u64| -> bool {
        match new_row[slot] {
            Some(existing) => existing == value,
            None => {
                new_row[slot] = Some(value);
                true
            }
        }
    };
    if let CPos::Var(s) = &triple.s {
        if !set(*s, quad[quadstore::ids::S]) {
            return None;
        }
    } else if let CPos::Const(_, Some(id)) = &triple.s {
        if id.0 != quad[quadstore::ids::S] {
            return None;
        }
    }
    if let CPos::Var(s) = &triple.p {
        if !set(*s, quad[quadstore::ids::P]) {
            return None;
        }
    } else if let CPos::Const(_, Some(id)) = &triple.p {
        if id.0 != quad[quadstore::ids::P] {
            return None;
        }
    }
    if let CPos::Var(s) = &triple.o {
        if !set(*s, quad[quadstore::ids::O]) {
            return None;
        }
    } else if let CPos::Const(_, Some(id)) = &triple.o {
        if id.0 != quad[quadstore::ids::O] {
            return None;
        }
    }
    if let CGraph::Var(s) = &triple.g {
        if !set(*s, quad[quadstore::ids::G]) {
            return None;
        }
    }
    Some(new_row)
}

fn extend_pos(row: &mut Row, pos: &CPos, value: u64) -> bool {
    match pos {
        CPos::Var(slot) => match row[*slot] {
            Some(existing) => existing == value,
            None => {
                row[*slot] = Some(value);
                true
            }
        },
        CPos::Const(_, Some(id)) => id.0 == value,
        CPos::Const(_, None) => false,
    }
}

/// [`extend_row`] without the clone: binds the quad's values into `row`
/// directly and returns a bitmask (S=1, P=2, O=4, G=8) of the positions
/// whose slot was newly bound, for [`undo_extend`]. On a consistency
/// mismatch the row is restored and `None` returned.
fn extend_in_place(row: &mut Row, triple: &CTriple, quad: &quadstore::EncodedQuad) -> Option<u8> {
    let mut mask = 0u8;
    let positions: [(&CPos, u64, u8); 3] = [
        (&triple.s, quad[quadstore::ids::S], 1),
        (&triple.p, quad[quadstore::ids::P], 2),
        (&triple.o, quad[quadstore::ids::O], 4),
    ];
    for (pos, value, bit) in positions {
        match pos {
            CPos::Var(slot) => match row[*slot] {
                Some(existing) => {
                    if existing != value {
                        undo_extend(row, triple, mask);
                        return None;
                    }
                }
                None => {
                    row[*slot] = Some(value);
                    mask |= bit;
                }
            },
            CPos::Const(_, Some(id)) => {
                if id.0 != value {
                    undo_extend(row, triple, mask);
                    return None;
                }
            }
            CPos::Const(_, None) => {}
        }
    }
    if let CGraph::Var(slot) = &triple.g {
        let value = quad[quadstore::ids::G];
        match row[*slot] {
            Some(existing) => {
                if existing != value {
                    undo_extend(row, triple, mask);
                    return None;
                }
            }
            None => {
                row[*slot] = Some(value);
                mask |= 8;
            }
        }
    }
    Some(mask)
}

/// Clears the slots that [`extend_in_place`] newly bound.
fn undo_extend(row: &mut Row, triple: &CTriple, mask: u8) {
    if mask & 1 != 0 {
        if let CPos::Var(s) = &triple.s {
            row[*s] = None;
        }
    }
    if mask & 2 != 0 {
        if let CPos::Var(s) = &triple.p {
            row[*s] = None;
        }
    }
    if mask & 4 != 0 {
        if let CPos::Var(s) = &triple.o {
            row[*s] = None;
        }
    }
    if mask & 8 != 0 {
        if let CGraph::Var(s) = &triple.g {
            row[*s] = None;
        }
    }
}

/// True when probing this triple with this row cannot bind any new slot —
/// every position is a constant or an already-bound variable. Such a step
/// is a pure existence/multiplicity check: each matching quad passes the
/// input row through unchanged, so no extension or clone is needed.
fn binds_nothing(row: &Row, triple: &CTriple) -> bool {
    let bound = |pos: &CPos| match pos {
        CPos::Var(slot) => row[*slot].is_some(),
        CPos::Const(..) => true,
    };
    bound(&triple.s)
        && bound(&triple.p)
        && bound(&triple.o)
        && match &triple.g {
            CGraph::Var(slot) => row[*slot].is_some(),
            _ => true,
        }
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel execution.
//
// The driving index scan of an eligible plan is split into fixed-size
// morsels (contiguous chunks of the chosen sorted index, plus per-member
// DML-delta morsels). Workers claim morsels from a shared counter, run the
// downstream pipeline batch-at-a-time on each morsel, and the outputs are
// concatenated in morsel order — which reproduces the sequential row order
// exactly, because every operator admitted by `parallel_safe` is
// "order-local": its output order depends only on its input order.
// ---------------------------------------------------------------------------

/// One pipeline stage applied to each morsel's rows after the driving scan.
#[derive(Clone, Copy)]
enum Stage<'p> {
    /// Remaining steps of the driving Steps node.
    Steps(&'p [Step]),
    /// A sibling node of the driving node inside a Join.
    Node(&'p Node),
    /// A FILTER wrapper unwrapped from around the root.
    Filters(&'p [CExpr]),
}

/// A root plan rewritten for morsel-parallel execution: a base row (from a
/// leading one-row VALUES pin), a driving index scan, and the downstream
/// stages every morsel's rows flow through.
struct DrivePlan<'p> {
    base: Row,
    drive: &'p Step,
    stages: Vec<Stage<'p>>,
    /// Output-order preference for the driving scan (quad position 0..=3):
    /// the grouped path sets this to the position its group key lives at,
    /// so tying indexes are broken towards group-key-sorted output and the
    /// run-length accumulator sees long key runs. `None` (the ordered
    /// row-producing path) keeps the sequential index choice — mandatory
    /// there, since row order must match the streaming executor exactly.
    prefer: Option<usize>,
}

/// Whether a node downstream of the driving scan preserves morsel
/// equivalence: evaluating it per-morsel and concatenating must equal
/// evaluating it over the whole input.
///
/// UNION fails (it re-orders: all-of-a then all-of-b over the *whole*
/// input). A sub-select fails because its join-key selection inspects the
/// whole input batch. OPTIONAL only needs a safe left side — its right
/// side is probed one row at a time in both paths.
fn parallel_safe(node: &Node) -> bool {
    match node {
        Node::Steps(_) | Node::Path(_) | Node::Values { .. } | Node::Extend(..) => true,
        Node::Minus(_) => true,
        Node::SubSelect(_) => false,
        Node::Join(children) => children.iter().all(parallel_safe),
        Node::Filter(_, inner) => parallel_safe(inner),
        Node::Optional(a, _) => parallel_safe(a),
        Node::Union(..) => false,
    }
}

/// True when the node is a UNION, possibly under FILTER wrappers.
fn root_union(node: &Node) -> bool {
    match node {
        Node::Union(..) => true,
        Node::Filter(_, inner) => root_union(inner),
        _ => false,
    }
}

/// Tries to rewrite a root node into a morsel-drivable plan. The root must
/// be (under optional FILTER wrappers) a non-empty Steps node, or a Join
/// of an optional leading one-row VALUES pin, a non-empty Steps node, and
/// `parallel_safe` siblings. The driving step must be an index scan.
fn drive_plan<'p>(ctx: &EvalCtx, node: &'p Node) -> Option<DrivePlan<'p>> {
    let mut filters: Vec<&'p [CExpr]> = Vec::new();
    let mut cur = node;
    while let Node::Filter(f, inner) = cur {
        filters.push(f);
        cur = inner;
    }
    let mut base = ctx.empty_row();
    let mut stages: Vec<Stage<'p>> = Vec::new();
    let drive: &'p Step;
    match cur {
        Node::Steps(steps) if !steps.is_empty() => {
            drive = &steps[0];
            if steps.len() > 1 {
                stages.push(Stage::Steps(&steps[1..]));
            }
        }
        Node::Join(children) if !children.is_empty() => {
            let mut idx = 0;
            if let Node::Values { slots, rows } = &children[0] {
                // The constant-equality pushdown plants a one-row VALUES
                // pin ahead of the steps; fold it into the base row.
                if rows.len() != 1 {
                    return None;
                }
                for (&slot, t) in slots.iter().zip(&rows[0]) {
                    if let Some(t) = t {
                        base[slot] = Some(ctx.intern_term(t));
                    }
                }
                idx = 1;
            }
            let steps = match children.get(idx) {
                Some(Node::Steps(steps)) if !steps.is_empty() => steps,
                _ => return None,
            };
            drive = &steps[0];
            if steps.len() > 1 {
                stages.push(Stage::Steps(&steps[1..]));
            }
            for child in &children[idx + 1..] {
                if !parallel_safe(child) {
                    return None;
                }
                stages.push(Stage::Node(child));
            }
        }
        _ => return None,
    }
    if !matches!(drive.strategy, Strategy::IndexNlj) {
        return None;
    }
    // Filters run last, innermost first (matching the nesting order).
    for f in filters.into_iter().rev() {
        stages.push(Stage::Filters(f));
    }
    Some(DrivePlan { base, drive, stages, prefer: None })
}

/// Produces the root's solution rows in exact sequential order, running
/// eligible (sub-)plans on the morsel-parallel executor. Root UNIONs are
/// split: each branch is produced fully (parallel where possible) and the
/// outputs concatenated, which is precisely the sequential order.
fn par_produce(ctx: &EvalCtx, sel: &CSelect) -> Vec<Row> {
    let needed = batch::needed_slots(ctx, sel);
    par_produce_stages(ctx, &sel.root, &[], &needed)
}

fn par_produce_stages<'p>(
    ctx: &EvalCtx,
    node: &'p Node,
    suffix: &[Stage<'p>],
    needed: &[bool],
) -> Vec<Row> {
    match node {
        Node::Union(a, b) => {
            let mut out = par_produce_stages(ctx, a, suffix, needed);
            out.extend(par_produce_stages(ctx, b, suffix, needed));
            out
        }
        Node::Filter(filters, inner) if root_union(inner) => {
            let mut with_filter: Vec<Stage<'p>> = vec![Stage::Filters(filters)];
            with_filter.extend_from_slice(suffix);
            par_produce_stages(ctx, inner, &with_filter, needed)
        }
        _ => match drive_plan(ctx, node) {
            Some(mut plan) => {
                plan.stages.extend_from_slice(suffix);
                run_morsels(ctx, &plan, needed)
            }
            None => {
                // Not drivable: evaluate this branch sequentially (the
                // suffix can only hold filters unwrapped from above).
                let input: BoxIter = Box::new(std::iter::once(ctx.empty_row()));
                let mut rows: Vec<Row> = eval_node(ctx, node, input).collect();
                for stage in suffix {
                    rows = apply_stage(ctx, stage, rows);
                }
                rows
            }
        },
    }
}

/// Runs one drive plan across all its morsels, merging worker outputs in
/// morsel order.
fn run_morsels(ctx: &EvalCtx, plan: &DrivePlan<'_>, needed: &[bool]) -> Vec<Row> {
    let pattern = match probe_pattern(&plan.base, &plan.drive.triple) {
        Some(p) => p,
        None => return Vec::new(),
    };
    let pipeline = if ctx.vectorize {
        batch::VecPipeline::compile(ctx, plan, needed)
    } else {
        None
    };
    let ops = if pipeline.is_some() { None } else { build_walk_ops(ctx, plan) };
    let row_bytes = ctx.vars.len() as u64 * SLOT_BYTES + 32;
    let run_one = |morsel: &Morsel| -> Vec<Row> {
        let out = match (&pipeline, &ops) {
            (Some(pipe), _) => {
                let mut out = Vec::new();
                let mut st = batch::VecState::new(pipe);
                pipe.run_morsel(ctx, &pattern, morsel, &mut st, &mut out);
                out
            }
            (None, Some(ops)) => {
                let mut out = Vec::new();
                let mut st = WalkState::default();
                let mut sink = |row: &Row| out.push(row.clone());
                walk_morsel(ctx, plan, ops, pattern, morsel, &mut st, &mut sink);
                out
            }
            (None, None) => run_one_morsel(ctx, plan, pattern, morsel),
        };
        // The merged result set retains every morsel's output until the
        // final concatenation: one bulk memory charge per morsel.
        if !out.is_empty() {
            let _ = ctx.charge_mem(out.len() as u64 * row_bytes);
        }
        out
    };
    let morsels = ctx.view.plan_morsels(&pattern, ctx.morsel_size);
    let track = telemetry::enabled();
    let trace = ctx.trace();
    let workers = ctx.threads.min(morsels.len()).max(1);
    if workers <= 1 {
        let mut out = Vec::new();
        let mut claimed = 0u64;
        for (i, morsel) in morsels.iter().enumerate() {
            if ctx.is_exhausted() {
                break;
            }
            claimed += 1;
            let started = trace.map(|t| t.now_nanos());
            out.extend(run_one(morsel));
            if let (Some(t), Some(started)) = (trace, started) {
                t.record("drive", format!("morsel {i}"), 1, started);
            }
        }
        if track {
            crate::metrics::morsels_claimed().add(claimed);
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, Vec<Row>)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                let morsels = &morsels;
                let run_one = &run_one;
                scope.spawn(move || {
                    let tid = w as u32 + 1;
                    let busy = track.then(|| crate::metrics::worker_busy_nanos().span());
                    let mut local: Vec<(usize, Vec<Row>)> = Vec::new();
                    let mut claimed = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= morsels.len() || ctx.is_exhausted() {
                            break;
                        }
                        claimed += 1;
                        let started = trace.map(|t| t.now_nanos());
                        local.push((i, run_one(&morsels[i])));
                        if let (Some(t), Some(started)) = (trace, started) {
                            t.record("drive", format!("morsel {i}"), tid, started);
                        }
                    }
                    if track {
                        crate::metrics::morsels_claimed().add(claimed);
                    }
                    drop(busy);
                    local
                })
            })
            .collect();
        for handle in handles {
            buckets.push(handle.join().expect("morsel worker panicked"));
        }
    });
    let settle_started = trace.map(|t| t.now_nanos());
    let mut indexed: Vec<(usize, Vec<Row>)> = buckets.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    let merged: Vec<Row> = indexed.into_iter().flat_map(|(_, rows)| rows).collect();
    if let (Some(t), Some(started)) = (trace, settle_started) {
        t.record("settle", format!("{} morsels", morsels.len()), 0, started);
    }
    merged
}

/// Drives one morsel's scan and pushes its rows through the plan stages.
fn run_one_morsel(
    ctx: &EvalCtx,
    plan: &DrivePlan<'_>,
    pattern: QuadPattern,
    morsel: &Morsel,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for quad in ctx.view.scan_morsel_ordered(pattern, morsel, plan.prefer) {
        if let Some(new_row) = extend_row(&plan.base, &plan.drive.triple, &quad) {
            rows.push(new_row);
        }
    }
    if !rows.is_empty() && !ctx.charge(rows.len() as u64) {
        return rows;
    }
    for stage in &plan.stages {
        if rows.is_empty() || ctx.is_exhausted() {
            break;
        }
        rows = apply_stage(ctx, stage, rows);
    }
    rows
}

fn apply_stage(ctx: &EvalCtx, stage: &Stage<'_>, rows: Vec<Row>) -> Vec<Row> {
    match stage {
        Stage::Steps(steps) => {
            let mut rows = rows;
            for step in *steps {
                if rows.is_empty() {
                    break;
                }
                rows = eval_step_batch(ctx, step, rows);
            }
            rows
        }
        Stage::Node(node) => eval_node_batch(ctx, node, rows),
        Stage::Filters(filters) => rows
            .into_iter()
            .filter(|row| {
                filters.iter().all(|f| {
                    let env = RowEnv { ctx, row, aggs: None };
                    f.eval_filter(&env)
                })
            })
            .collect(),
    }
}

/// Batch mirror of [`eval_node`]: given the same input rows it produces
/// the same output rows in the same order, without per-row boxed-iterator
/// dispatch. Used by the morsel pipeline.
fn eval_node_batch(ctx: &EvalCtx, node: &Node, rows: Vec<Row>) -> Vec<Row> {
    match node {
        Node::Steps(steps) => {
            let mut rows = rows;
            for step in steps {
                if rows.is_empty() {
                    break;
                }
                rows = eval_step_batch(ctx, step, rows);
            }
            rows
        }
        Node::Path(pstep) => {
            let mut out = Vec::new();
            'rows: for row in rows {
                let s_val = pos_value(&row, &pstep.s);
                let o_val = pos_value(&row, &pstep.o);
                let bad = |v: &Option<Option<u64>>| matches!(v, Some(None));
                if bad(&s_val) || bad(&o_val) {
                    continue;
                }
                let pairs = path::eval_path_pairs_with(
                    &ctx.view,
                    &pstep.path,
                    pstep.graph,
                    s_val.flatten(),
                    o_val.flatten(),
                    ctx,
                );
                for (s, o) in pairs {
                    let mut new_row = row.clone();
                    if extend_pos(&mut new_row, &pstep.s, s)
                        && extend_pos(&mut new_row, &pstep.o, o)
                    {
                        if !ctx.charge(1) {
                            break 'rows;
                        }
                        out.push(new_row);
                    }
                }
            }
            out
        }
        Node::Join(children) => {
            let mut rows = rows;
            for child in children {
                if rows.is_empty() {
                    break;
                }
                rows = eval_node_batch(ctx, child, rows);
            }
            rows
        }
        Node::Filter(filters, inner) => {
            let rows = eval_node_batch(ctx, inner, rows);
            rows.into_iter()
                .filter(|row| {
                    filters.iter().all(|f| {
                        let env = RowEnv { ctx, row, aggs: None };
                        f.eval_filter(&env)
                    })
                })
                .collect()
        }
        Node::Union(a, b) => {
            let right_input = rows.clone();
            let mut out = eval_node_batch(ctx, a, rows);
            out.extend(eval_node_batch(ctx, b, right_input));
            out
        }
        Node::Optional(a, b) => {
            let left = eval_node_batch(ctx, a, rows);
            let mut out = Vec::new();
            for row in left {
                let matches = eval_node_batch(ctx, b, vec![row.clone()]);
                if matches.is_empty() {
                    out.push(row);
                } else {
                    out.extend(matches);
                }
            }
            out
        }
        Node::SubSelect(sel) => {
            let inner = ctx.shared_select_rows(sel);
            let input_rows = rows;
            let slots = sel.projected_slots();
            let join_slots: Vec<usize> = slots
                .iter()
                .copied()
                .filter(|&s| {
                    !input_rows.is_empty() && input_rows.iter().all(|r| r[s].is_some())
                })
                .collect();
            let mut table: HashMap<Vec<u64>, Vec<Row>> = HashMap::new();
            for irow in inner {
                let key: Option<Vec<u64>> = join_slots.iter().map(|&s| irow[s]).collect();
                if let Some(key) = key {
                    table.entry(key).or_default().push(irow);
                }
            }
            let mut out = Vec::new();
            for row in input_rows {
                let key: Vec<u64> = join_slots
                    .iter()
                    .map(|&s| row[s].expect("join slot bound in all input rows"))
                    .collect();
                if let Some(matches) = table.get(&key) {
                    'matches: for m in matches {
                        let mut merged = row.clone();
                        for &s in &slots {
                            match (merged[s], m[s]) {
                                (Some(a), Some(b)) if a != b => continue 'matches,
                                (None, b) => merged[s] = b,
                                _ => {}
                            }
                        }
                        out.push(merged);
                    }
                }
            }
            out
        }
        Node::Values { slots, rows: vrows } => {
            let resolved: Vec<Vec<Option<u64>>> = vrows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|t| t.as_ref().map(|t| ctx.intern_term(t)))
                        .collect()
                })
                .collect();
            let mut out = Vec::new();
            for row in rows {
                'vrows: for vrow in &resolved {
                    let mut merged = row.clone();
                    for (&slot, value) in slots.iter().zip(vrow) {
                        if let Some(v) = value {
                            match merged[slot] {
                                Some(existing) if existing != *v => continue 'vrows,
                                _ => merged[slot] = Some(*v),
                            }
                        }
                    }
                    out.push(merged);
                }
            }
            out
        }
        Node::Extend(slot, expr) => {
            let mut rows = rows;
            for row in &mut rows {
                let value = {
                    let env = RowEnv { ctx, row, aggs: None };
                    expr.eval(&env)
                };
                row[*slot] = value.map(|v| ctx.intern_value(v));
            }
            rows
        }
        Node::Minus(inner) => {
            let right: Vec<Row> = ctx.shared_minus_rows(inner);
            rows.into_iter()
                .filter(|row| {
                    !right.iter().any(|r| {
                        let mut shared = false;
                        for (a, b) in row.iter().zip(r.iter()) {
                            if let (Some(x), Some(y)) = (a, b) {
                                if x != y {
                                    return false;
                                }
                                shared = true;
                            }
                        }
                        shared
                    })
                })
                .collect()
        }
    }
}

/// Batch mirror of [`eval_step`].
fn eval_step_batch(ctx: &EvalCtx, step: &Step, rows: Vec<Row>) -> Vec<Row> {
    match &step.strategy {
        Strategy::IndexNlj => {
            let mut out = Vec::new();
            'rows: for row in rows {
                if let Some(pattern) = probe_pattern(&row, &step.triple) {
                    if binds_nothing(&row, &step.triple) {
                        // Existence/multiplicity check: every match passes
                        // the row through unchanged (a member-duplicated
                        // quad matches more than once, like in the
                        // streaming path), so the row is moved, not cloned.
                        let n = ctx.view.count_matches(&pattern);
                        if n > 0 {
                            for _ in 1..n {
                                out.push(row.clone());
                            }
                            out.push(row);
                            if !ctx.charge(n as u64) {
                                break 'rows;
                            }
                        }
                        continue;
                    }
                    let before = out.len();
                    for quad in ctx.view.probe(pattern) {
                        if let Some(new_row) = extend_row(&row, &step.triple, &quad) {
                            out.push(new_row);
                        }
                    }
                    let produced = (out.len() - before) as u64;
                    if produced > 0 && !ctx.charge(produced) {
                        break 'rows;
                    }
                }
            }
            out
        }
        Strategy::HashJoin { join_slots } => {
            let cell = ctx.build_cell(step);
            let mut out = Vec::new();
            'rows: for row in rows {
                // Mirror the streaming hash join: computed IDs in a join
                // slot can never match stored quads; an unbound join slot
                // falls back to a per-row index scan.
                if join_slots
                    .iter()
                    .any(|&s| matches!(row[s], Some(id) if id & COMPUTED_BIT != 0))
                {
                    continue;
                }
                if join_slots.iter().any(|&s| row[s].is_none()) {
                    if let Some(pattern) = probe_pattern(&row, &step.triple) {
                        let before = out.len();
                        for quad in ctx.view.probe(pattern) {
                            if let Some(new_row) = extend_row(&row, &step.triple, &quad) {
                                out.push(new_row);
                            }
                        }
                        let produced = (out.len() - before) as u64;
                        if produced > 0 && !ctx.charge(produced) {
                            break 'rows;
                        }
                    }
                    continue;
                }
                let table = cell.get_or_init(|| build_table(ctx, step, join_slots));
                let key: Vec<u64> = join_slots
                    .iter()
                    .map(|&s| row[s].expect("checked above"))
                    .collect();
                if let Some(quads) = table.get(&key) {
                    let before = out.len();
                    for quad in quads {
                        if let Some(new_row) = extend_row(&row, &step.triple, quad) {
                            out.push(new_row);
                        }
                    }
                    let produced = (out.len() - before) as u64;
                    if produced > 0 && !ctx.charge(produced) {
                        break 'rows;
                    }
                }
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// The zero-allocation pipeline walk.
//
// When every stage after the driving scan is element-wise (steps and
// filters — no Node stages), the whole pipeline runs depth-first over ONE
// scratch row per worker: each join step binds its quad's values into the
// row in place, recurses, and undoes its bindings. No intermediate row is
// ever cloned; only the sink at the bottom sees (and may copy) finished
// rows. Depth-first enumeration visits final rows in exactly the
// sequential streaming order, so morsel-order merging still reproduces it.
// ---------------------------------------------------------------------------

/// One element-wise pipeline operation, pre-resolved for the walk.
enum WalkOp<'p> {
    /// An index nested-loop join step.
    Nlj(&'p Step),
    /// A hash join step with its shared build-side cell.
    Hash { step: &'p Step, join_slots: &'p [usize], cell: Arc<OnceLock<BuildTable>> },
    /// A FILTER conjunction.
    Filter(&'p [CExpr]),
}

/// Flattens a drive plan's stages into walk operations, or `None` when a
/// stage is not element-wise (a sibling Node — those need batch inputs).
fn build_walk_ops<'p>(ctx: &EvalCtx, plan: &DrivePlan<'p>) -> Option<Vec<WalkOp<'p>>> {
    let mut ops = Vec::new();
    for stage in &plan.stages {
        match stage {
            Stage::Steps(steps) => {
                for step in *steps {
                    match &step.strategy {
                        Strategy::IndexNlj => ops.push(WalkOp::Nlj(step)),
                        Strategy::HashJoin { join_slots } => ops.push(WalkOp::Hash {
                            step,
                            join_slots,
                            cell: ctx.build_cell(step),
                        }),
                    }
                }
            }
            Stage::Filters(filters) => ops.push(WalkOp::Filter(filters)),
            Stage::Node(_) => return None,
        }
    }
    Some(ops)
}

/// How many produced rows a walk accumulates before charging the context
/// (one atomic op per chunk instead of per row; totals are unchanged).
const WALK_CHARGE_CHUNK: u64 = 1024;

/// Per-worker walk accounting: rows produced since the last charge, and a
/// sticky stop flag raised when a resource limit fires.
#[derive(Default)]
struct WalkState {
    pending: u64,
    stop: bool,
    /// Per-op-depth memo of the last probe: the driving scan is
    /// index-sorted, so consecutive rows very often resolve a downstream
    /// step to the *same* probe pattern (e.g. the triangle query's middle
    /// edge repeats once per in-group neighbour). A hit replays the
    /// materialised matches and skips the index binary searches entirely.
    /// Keyed by pattern value only — the store is immutable during a
    /// query, so equal patterns always yield equal match lists.
    memo: Vec<ProbeMemo>,
}

#[derive(Default)]
struct ProbeMemo {
    pattern: Option<QuadPattern>,
    quads: Vec<quadstore::EncodedQuad>,
}

impl WalkState {
    fn produce(&mut self, ctx: &EvalCtx, n: u64) -> bool {
        if self.stop {
            return false;
        }
        self.pending += n;
        if self.pending >= WALK_CHARGE_CHUNK {
            let n = std::mem::take(&mut self.pending);
            if !ctx.charge(n) {
                self.stop = true;
                return false;
            }
        }
        true
    }

    fn flush(&mut self, ctx: &EvalCtx) {
        let n = std::mem::take(&mut self.pending);
        if n > 0 && !ctx.charge(n) {
            self.stop = true;
        }
    }
}

/// Runs the remaining operations depth-first over the scratch row,
/// invoking `sink` once per finished pipeline row.
fn walk(
    ctx: &EvalCtx,
    ops: &[WalkOp<'_>],
    depth: usize,
    row: &mut Row,
    st: &mut WalkState,
    sink: &mut dyn FnMut(&Row),
) {
    let Some(op) = ops.get(depth) else {
        sink(row);
        return;
    };
    match op {
        WalkOp::Filter(filters) => {
            let pass = filters.iter().all(|f| {
                let env = RowEnv { ctx, row: &*row, aggs: None };
                f.eval_filter(&env)
            });
            if pass {
                walk(ctx, ops, depth + 1, row, st, sink);
            }
        }
        WalkOp::Nlj(step) => walk_probe(ctx, ops, depth, step, row, st, sink),
        WalkOp::Hash { step, join_slots, cell } => {
            // Mirrors the batch hash join: computed IDs never match stored
            // quads; an unbound join slot falls back to an index probe.
            if join_slots
                .iter()
                .any(|&s| matches!(row[s], Some(id) if id & COMPUTED_BIT != 0))
            {
                return;
            }
            if join_slots.iter().any(|&s| row[s].is_none()) {
                walk_probe(ctx, ops, depth, step, row, st, sink);
                return;
            }
            let table = cell.get_or_init(|| build_table(ctx, step, join_slots));
            // Key on the stack: a triple has at most four variable
            // positions, and `Vec<u64>: Borrow<[u64]>` lets the map be
            // probed with a slice — no allocation per input row.
            let mut key = [0u64; 4];
            for (dst, &s) in key.iter_mut().zip(join_slots.iter()) {
                *dst = row[s].expect("checked above");
            }
            let Some(quads) = table.get(&key[..join_slots.len()]) else { return };
            for quad in quads {
                if st.stop {
                    return;
                }
                if let Some(mask) = extend_in_place(row, &step.triple, quad) {
                    let ok = st.produce(ctx, 1);
                    if ok {
                        walk(ctx, ops, depth + 1, row, st, sink);
                    }
                    undo_extend(row, &step.triple, mask);
                    if !ok {
                        return;
                    }
                }
            }
        }
    }
}

/// One index probe of the walk: extend in place per matching quad, or —
/// when the row already binds every position — pass the row through once
/// per match without touching it.
fn walk_probe(
    ctx: &EvalCtx,
    ops: &[WalkOp<'_>],
    depth: usize,
    step: &Step,
    row: &mut Row,
    st: &mut WalkState,
    sink: &mut dyn FnMut(&Row),
) {
    let Some(pattern) = probe_pattern(row, &step.triple) else { return };
    if binds_nothing(row, &step.triple) {
        let n = ctx.view.count_matches(&pattern);
        if n == 0 {
            return;
        }
        if !st.produce(ctx, n as u64) {
            return;
        }
        for _ in 0..n {
            if st.stop {
                return;
            }
            walk(ctx, ops, depth + 1, row, st, sink);
        }
        return;
    }
    if st.memo.len() <= depth {
        st.memo.resize_with(depth + 1, ProbeMemo::default);
    }
    if st.memo[depth].pattern != Some(pattern) {
        let mut quads = std::mem::take(&mut st.memo[depth].quads);
        quads.clear();
        quads.extend(ctx.view.probe(pattern));
        st.memo[depth] = ProbeMemo { pattern: Some(pattern), quads };
    }
    // Take the match list out of the memo while recursing (deeper levels
    // borrow `st` for their own memo slots), and put it back after.
    let quads = std::mem::take(&mut st.memo[depth].quads);
    for quad in &quads {
        if st.stop {
            break;
        }
        if let Some(mask) = extend_in_place(row, &step.triple, quad) {
            let ok = st.produce(ctx, 1);
            if ok {
                walk(ctx, ops, depth + 1, row, st, sink);
            }
            undo_extend(row, &step.triple, mask);
            if !ok {
                break;
            }
        }
    }
    st.memo[depth].quads = quads;
}

/// Walks one morsel of a drive plan, feeding finished rows to `sink`.
fn walk_morsel(
    ctx: &EvalCtx,
    plan: &DrivePlan<'_>,
    ops: &[WalkOp<'_>],
    pattern: QuadPattern,
    morsel: &Morsel,
    st: &mut WalkState,
    sink: &mut dyn FnMut(&Row),
) {
    let mut row = plan.base.clone();
    for quad in ctx.view.scan_morsel_ordered(pattern, morsel, plan.prefer) {
        if st.stop {
            break;
        }
        if let Some(mask) = extend_in_place(&mut row, &plan.drive.triple, &quad) {
            let ok = st.produce(ctx, 1);
            if ok {
                walk(ctx, ops, 0, &mut row, st, sink);
            }
            undo_extend(&mut row, &plan.drive.triple, mask);
            if !ok {
                break;
            }
        }
    }
    st.flush(ctx);
}

// ---------------------------------------------------------------------------
// Fused parallel aggregation.
//
// When every aggregate merges losslessly across workers (the COUNT
// family: partial counts sum, partial distinct-sets union), grouping runs
// inside the morsel workers and only per-group partial states are merged —
// no global row materialisation. Order-sensitive aggregates (MIN/MAX tie
// on first-encountered among SPARQL-equal values; SUM/AVG float addition
// is not associative) take the ordered path instead.
// ---------------------------------------------------------------------------

/// Per-aggregate fast path used inside morsel workers.
enum FastAgg {
    /// COUNT(*): count rows.
    CountAll,
    /// COUNT(?v): count rows where the slot is bound.
    CountSlot(usize),
    /// Any other COUNT: evaluate the expression like the sequential loop.
    Generic,
}

/// The fused-path accumulator for one aggregate, or `None` when the
/// aggregate cannot be merged across workers.
fn fast_agg(agg: &CAggregate) -> Option<FastAgg> {
    match agg {
        CAggregate::CountAll => Some(FastAgg::CountAll),
        CAggregate::Count { distinct: false, expr: CExpr::Var(slot) } => {
            Some(FastAgg::CountSlot(*slot))
        }
        CAggregate::Count { .. } => Some(FastAgg::Generic),
        _ => None,
    }
}

/// A multiply-rotate hasher for the fused path's internal group maps.
/// Far cheaper than the default SipHash on the short term-ID keys these
/// maps use — and safe here, because the keys are dictionary IDs minted
/// by the store, not attacker-controlled byte strings.
#[derive(Default)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback for whatever the std Hash impls feed us that is
        // not a u64 (length prefixes, Option discriminants, ...).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(26);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }
}

type IdHashState = std::hash::BuildHasherDefault<IdHasher>;

/// One worker's partial aggregation state.
#[derive(Default)]
struct GroupedPartial {
    groups: HashMap<Vec<Option<u64>>, Vec<Acc>, IdHashState>,
    saw_rows: bool,
}

/// Splits a root into drive plans, one per UNION branch (duplicates and
/// multiplicities are preserved — each input row flows through every
/// branch exactly once, so the aggregated multiset is unchanged). Returns
/// `false` if any branch is not drivable.
fn collect_plans<'p>(
    ctx: &EvalCtx,
    node: &'p Node,
    suffix: &[Stage<'p>],
    out: &mut Vec<DrivePlan<'p>>,
) -> bool {
    match node {
        Node::Union(a, b) => {
            collect_plans(ctx, a, suffix, out) && collect_plans(ctx, b, suffix, out)
        }
        Node::Filter(filters, inner) if root_union(inner) => {
            let mut with_filter: Vec<Stage<'p>> = vec![Stage::Filters(filters)];
            with_filter.extend_from_slice(suffix);
            collect_plans(ctx, inner, &with_filter, out)
        }
        _ => match drive_plan(ctx, node) {
            Some(mut plan) => {
                plan.stages.extend_from_slice(suffix);
                out.push(plan);
                true
            }
            None => false,
        },
    }
}

/// The quad position (0=S, 1=P, 2=O, 3=G) at which the driving triple
/// binds `slot`, when it does and the slot is still free in the base row —
/// i.e. the position whose index sort order would emit rows grouped by
/// that slot. Downstream stages only *extend* rows, so a slot bound by the
/// drive keeps its value (and its run structure) through the pipeline.
fn drive_sort_preference(plan: &DrivePlan<'_>, slot: usize) -> Option<usize> {
    if plan.base[slot].is_some() {
        return None;
    }
    let t = &plan.drive.triple;
    if matches!(t.s, CPos::Var(v) if v == slot) {
        Some(quadstore::ids::S)
    } else if matches!(t.p, CPos::Var(v) if v == slot) {
        Some(quadstore::ids::P)
    } else if matches!(t.o, CPos::Var(v) if v == slot) {
        Some(quadstore::ids::O)
    } else if matches!(t.g, CGraph::Var(v) if v == slot) {
        Some(quadstore::ids::G)
    } else {
        None
    }
}

/// Runs the fused parallel aggregation, or `None` when the aggregates or
/// the plan shape rule it out.
fn par_grouped(ctx: &EvalCtx, sel: &CSelect) -> Option<GroupedPartial> {
    let fast: Vec<FastAgg> = sel.aggregates.iter().map(fast_agg).collect::<Option<_>>()?;
    let mut plans: Vec<DrivePlan<'_>> = Vec::new();
    if !collect_plans(ctx, &sel.root, &[], &mut plans) {
        return None;
    }
    // Group output is a set of (key, accumulator) pairs — insensitive to
    // input row order — so the driving scan is free to pick, among tying
    // indexes, one sorted by the group key. That turns the accumulator's
    // per-row hash lookups into one lookup per key run (e.g. the
    // out-degree query groups by subject: PSCGM feeds subject-sorted rows
    // where the default PCSGM choice would feed object-sorted ones).
    if let [slot] = sel.group_slots[..] {
        for plan in &mut plans {
            plan.prefer = drive_sort_preference(plan, slot);
        }
    }
    // Flatten every plan's morsels into one shared task list.
    let mut patterns: Vec<Option<QuadPattern>> = Vec::with_capacity(plans.len());
    let mut tasks: Vec<(usize, Morsel)> = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        let pattern = probe_pattern(&plan.base, &plan.drive.triple);
        if let Some(p) = pattern {
            for morsel in ctx.view.plan_morsels_ordered(&p, ctx.morsel_size, plan.prefer) {
                tasks.push((i, morsel));
            }
        }
        patterns.push(pattern);
    }
    // Per-plan vectorized pipelines (compiled after the sort preference is
    // fixed — the pipeline captures `prefer` for its driving scan). Plans
    // the columnar compiler rejects fall back to the zero-alloc walk.
    let needed = if ctx.vectorize { batch::needed_slots(ctx, sel) } else { Vec::new() };
    let pipelines: Vec<Option<batch::VecPipeline<'_>>> = plans
        .iter()
        .map(|p| {
            if ctx.vectorize {
                batch::VecPipeline::compile(ctx, p, &needed)
            } else {
                None
            }
        })
        .collect();
    // Per-plan walk programs: element-wise pipelines aggregate straight
    // out of the depth-first walk with zero row materialisation.
    let walk_ops: Vec<Option<Vec<WalkOp<'_>>>> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| if pipelines[i].is_some() { None } else { build_walk_ops(ctx, p) })
        .collect();
    let run_task =
        |t: usize, sink: &mut RunSink, st: &mut WalkState, vst: &mut [batch::VecState]| {
            let (i, morsel) = &tasks[t];
            let plan = &plans[*i];
            let pattern = patterns[*i].expect("task implies pattern");
            if let Some(pipe) = &pipelines[*i] {
                pipe.run_morsel_grouped(ctx, sel, &fast, &pattern, morsel, &mut vst[*i], sink);
                return;
            }
            match &walk_ops[*i] {
                Some(ops) => {
                    let mut feed = |row: &Row| sink.push(ctx, sel, &fast, row);
                    walk_morsel(ctx, plan, ops, pattern, morsel, st, &mut feed);
                }
                None => {
                    for row in run_one_morsel(ctx, plan, pattern, morsel) {
                        sink.push(ctx, sel, &fast, &row);
                    }
                }
            }
        };
    let new_states = || -> Vec<batch::VecState> {
        pipelines
            .iter()
            .map(|p| p.as_ref().map(batch::VecState::new).unwrap_or_default())
            .collect()
    };
    let track = telemetry::enabled();
    let trace = ctx.trace();
    let workers = ctx.threads.min(tasks.len()).max(1);
    let mut partials: Vec<GroupedPartial> = Vec::new();
    if workers <= 1 {
        let mut sink = RunSink::default();
        let mut st = WalkState::default();
        let mut vst = new_states();
        let mut claimed = 0u64;
        for t in 0..tasks.len() {
            if ctx.is_exhausted() {
                break;
            }
            claimed += 1;
            let started = trace.map(|tr| tr.now_nanos());
            run_task(t, &mut sink, &mut st, &mut vst);
            if let (Some(tr), Some(started)) = (trace, started) {
                tr.record("drive", format!("agg morsel {t}"), 1, started);
            }
        }
        if track {
            crate::metrics::morsels_claimed().add(claimed);
        }
        partials.push(sink.finish(ctx, sel));
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let next = &next;
                    let tasks = &tasks;
                    let run_task = &run_task;
                    let new_states = &new_states;
                    scope.spawn(move || {
                        let tid = w as u32 + 1;
                        let busy = track.then(|| crate::metrics::worker_busy_nanos().span());
                        let mut sink = RunSink::default();
                        let mut st = WalkState::default();
                        let mut vst = new_states();
                        let mut claimed = 0u64;
                        loop {
                            let t = next.fetch_add(1, Ordering::Relaxed);
                            if t >= tasks.len() || ctx.is_exhausted() {
                                break;
                            }
                            claimed += 1;
                            let started = trace.map(|tr| tr.now_nanos());
                            run_task(t, &mut sink, &mut st, &mut vst);
                            if let (Some(tr), Some(started)) = (trace, started) {
                                tr.record("drive", format!("agg morsel {t}"), tid, started);
                            }
                        }
                        if track {
                            crate::metrics::morsels_claimed().add(claimed);
                        }
                        drop(busy);
                        sink.finish(ctx, sel)
                    })
                })
                .collect();
            for handle in handles {
                partials.push(handle.join().expect("aggregation worker panicked"));
            }
        });
    }
    let settle_started = trace.map(|t| t.now_nanos());
    let mut merged = partials.pop().unwrap_or_default();
    for part in partials {
        merge_partial(&mut merged, part);
    }
    if let (Some(t), Some(started)) = (trace, settle_started) {
        t.record("settle", format!("{} partials", workers), 0, started);
    }
    Some(merged)
}

/// A worker's group accumulator with run-length batching: consecutive
/// rows with the same group key update a local accumulator vector and the
/// hash map is only touched when the key changes. Index-ordered inputs
/// (e.g. grouping by the driving scan's sort column) aggregate with one
/// map operation per *group*; random key orders degrade to one map
/// operation per row, no worse than a plain entry-per-row loop.
#[derive(Default)]
struct RunSink {
    part: GroupedPartial,
    key: Vec<Option<u64>>,
    accs: Vec<Acc>,
    active: bool,
    scratch: Vec<Option<u64>>,
}

impl RunSink {
    fn push(&mut self, ctx: &EvalCtx, sel: &CSelect, fast: &[FastAgg], row: &Row) {
        self.part.saw_rows = true;
        self.scratch.clear();
        self.scratch.extend(sel.group_slots.iter().map(|&s| row[s]));
        if !self.active || self.scratch != self.key {
            self.flush(ctx, sel);
            self.key.clone_from(&self.scratch);
            self.accs.clear();
            self.accs.extend(sel.aggregates.iter().map(Acc::new));
            self.active = true;
        }
        for ((acc, agg), f) in self.accs.iter_mut().zip(&sel.aggregates).zip(fast) {
            match (f, &mut *acc) {
                (FastAgg::CountAll, Acc::CountAll(n)) => *n += 1,
                (FastAgg::CountSlot(s), Acc::Count(n)) => {
                    if row[*s].is_some() {
                        *n += 1;
                    }
                }
                (FastAgg::Generic, acc) => acc.update(ctx, agg, row),
                _ => unreachable!("fast-agg/accumulator mismatch"),
            }
        }
    }

    /// The columnar fast path: consumes a pre-built group key and static
    /// per-row increments (COUNT-family aggregates only — enforced by the
    /// caller) without materialising a row.
    fn push_counts(&mut self, ctx: &EvalCtx, sel: &CSelect, key: &[Option<u64>], incs: &[u64]) {
        self.part.saw_rows = true;
        if !self.active || key != self.key.as_slice() {
            self.flush(ctx, sel);
            self.key.clear();
            self.key.extend_from_slice(key);
            self.accs.clear();
            self.accs.extend(sel.aggregates.iter().map(Acc::new));
            self.active = true;
        }
        for (acc, inc) in self.accs.iter_mut().zip(incs) {
            match acc {
                Acc::CountAll(n) | Acc::Count(n) => *n += *inc,
                _ => unreachable!("columnar counts over a non-count accumulator"),
            }
        }
    }

    /// Merges the current run into the group map.
    fn flush(&mut self, ctx: &EvalCtx, sel: &CSelect) {
        if !self.active {
            return;
        }
        if let Some(accs) = self.part.groups.get_mut(self.key.as_slice()) {
            for (a, b) in accs.iter_mut().zip(self.accs.iter_mut()) {
                merge_acc(a, std::mem::replace(b, Acc::CountAll(0)));
            }
        } else {
            self.part
                .groups
                .insert(self.key.clone(), std::mem::take(&mut self.accs));
            // A fresh partial group is retained state on this worker;
            // failure is sticky and stops the worker's morsel loop.
            let _ = ctx.charge_mem(group_mem_bytes(sel));
        }
        self.active = false;
    }

    fn finish(mut self, ctx: &EvalCtx, sel: &CSelect) -> GroupedPartial {
        self.flush(ctx, sel);
        self.part
    }
}

fn merge_partial(into: &mut GroupedPartial, from: GroupedPartial) {
    into.saw_rows |= from.saw_rows;
    for (key, accs) in from.groups {
        match into.groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                for (a, b) in entry.get_mut().iter_mut().zip(accs) {
                    merge_acc(a, b);
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(accs);
            }
        }
    }
}

/// Merges two partial accumulators for the same group. Only the COUNT
/// family reaches here (enforced by [`fast_agg`]).
fn merge_acc(a: &mut Acc, b: Acc) {
    match (a, b) {
        (Acc::CountAll(x), Acc::CountAll(y)) | (Acc::Count(x), Acc::Count(y)) => *x += y,
        (Acc::CountDistinct(x), Acc::CountDistinct(y)) => x.extend(y),
        _ => unreachable!("merging non-mergeable accumulators"),
    }
}
