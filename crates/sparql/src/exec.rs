//! The streaming query executor.
//!
//! Solutions are rows of `Option<u64>` term IDs indexed by binding slot.
//! IDs with [`COMPUTED_BIT`] set refer to query-computed terms (aggregate
//! results, `CONCAT` outputs, ...) held in a query-local side table; a
//! computed term that also exists in the store dictionary is given its
//! store ID instead, so joins and grouping treat value-equal terms as
//! equal regardless of where they came from.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

use quadstore::{DatasetView, GraphConstraint, QuadPattern};
use rdf_model::{Term, TermId};

use crate::error::SparqlError;
use crate::expr::{CExpr, ExprEnv, TermKind, Value};
use crate::path;
use crate::plan::{
    CAggregate, CForm, CGraph, CPos, CSelect, CTriple, CompiledQuery, Node, Step, Strategy,
    VarTable,
};

/// High bit marks query-computed term IDs.
pub const COMPUTED_BIT: u64 = 1 << 63;

/// A solution row: one optional term ID per binding slot.
pub type Row = Vec<Option<u64>>;

type BoxIter<'it> = Box<dyn Iterator<Item = Row> + 'it>;

/// Resource bounds on one query execution. Operators charge the context
/// for every intermediate row they produce, so a pathological query (a
/// cross product, a runaway property path) aborts with
/// [`SparqlError::ResourceExhausted`] instead of consuming unbounded
/// memory or wall-clock time.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecLimits {
    /// Abort after producing this many intermediate rows across all
    /// operators (`None` = unbounded).
    pub max_rows: Option<u64>,
    /// Abort once this instant passes (`None` = no deadline). Checked
    /// every ~1024 row charges to keep the clock off the hot path.
    pub deadline: Option<Instant>,
}

impl ExecLimits {
    /// A limit on intermediate rows only.
    pub fn rows(max_rows: u64) -> ExecLimits {
        ExecLimits { max_rows: Some(max_rows), deadline: None }
    }

    /// A deadline `timeout` from now.
    pub fn timeout(timeout: std::time::Duration) -> ExecLimits {
        ExecLimits { max_rows: None, deadline: Some(Instant::now() + timeout) }
    }
}

/// How often (in row charges) the deadline is compared against the clock.
const DEADLINE_STRIDE: u64 = 1024;

/// Evaluation context: the dataset plus the computed-terms side table.
pub struct EvalCtx<'a> {
    /// The dataset being queried.
    pub view: DatasetView<'a>,
    /// The query's variable table.
    pub vars: VarTable,
    /// Compiled EXISTS patterns (referenced by `CExpr::ExistsRef`).
    pub exists: Vec<Node>,
    computed: RefCell<Computed>,
    limits: ExecLimits,
    charged: Cell<u64>,
    next_deadline_check: Cell<u64>,
    exhausted: RefCell<Option<String>>,
}

#[derive(Default)]
struct Computed {
    terms: Vec<Term>,
    ids: HashMap<Term, u64>,
}

impl<'a> EvalCtx<'a> {
    /// Creates a context for one query execution.
    pub fn new(view: DatasetView<'a>, vars: VarTable) -> Self {
        Self::with_exists(view, vars, Vec::new())
    }

    /// A context carrying compiled EXISTS patterns.
    pub fn with_exists(view: DatasetView<'a>, vars: VarTable, exists: Vec<Node>) -> Self {
        EvalCtx {
            view,
            vars,
            exists,
            computed: RefCell::new(Computed::default()),
            limits: ExecLimits::default(),
            charged: Cell::new(0),
            next_deadline_check: Cell::new(DEADLINE_STRIDE),
            exhausted: RefCell::new(None),
        }
    }

    /// Applies resource limits to this execution.
    pub fn with_limits(mut self, limits: ExecLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Charges `n` produced rows against the limits. Returns `false` once
    /// a limit is hit — the calling operator must stop producing rows.
    /// Exhaustion is sticky: every later charge also fails, and
    /// [`exec_select`] turns the recorded reason into an error even when
    /// an intermediate operator (e.g. a sub-select) discards it.
    pub fn charge(&self, n: u64) -> bool {
        if self.exhausted.borrow().is_some() {
            return false;
        }
        let total = self.charged.get().saturating_add(n);
        self.charged.set(total);
        if let Some(max) = self.limits.max_rows {
            if total > max {
                *self.exhausted.borrow_mut() =
                    Some(format!("produced more than {max} intermediate rows"));
                return false;
            }
        }
        if let Some(deadline) = self.limits.deadline {
            if total >= self.next_deadline_check.get() {
                self.next_deadline_check.set(total + DEADLINE_STRIDE);
                if Instant::now() >= deadline {
                    *self.exhausted.borrow_mut() = Some("deadline exceeded".into());
                    return false;
                }
            }
        }
        true
    }

    /// Why execution was aborted, if a limit was hit.
    pub fn exhaustion(&self) -> Option<String> {
        self.exhausted.borrow().clone()
    }

    /// Resolves an ID (store or computed) to an owned term.
    pub fn resolve(&self, id: u64) -> Option<Term> {
        if id & COMPUTED_BIT != 0 {
            self.computed
                .borrow()
                .terms
                .get((id & !COMPUTED_BIT) as usize)
                .cloned()
        } else {
            self.view.store().term(TermId(id)).cloned()
        }
    }

    /// The kind of the term behind an ID without cloning it.
    pub fn kind(&self, id: u64) -> Option<TermKind> {
        if id & COMPUTED_BIT != 0 {
            self.computed
                .borrow()
                .terms
                .get((id & !COMPUTED_BIT) as usize)
                .map(TermKind::of)
        } else {
            self.view.store().term(TermId(id)).map(TermKind::of)
        }
    }

    /// Interns a term: store ID when the term exists in the store, else a
    /// computed ID (stable within this execution).
    pub fn intern_term(&self, term: &Term) -> u64 {
        if let Some(id) = self.view.store().term_id(term) {
            return id.0;
        }
        let mut computed = self.computed.borrow_mut();
        if let Some(&id) = computed.ids.get(term) {
            return id;
        }
        let id = COMPUTED_BIT | computed.terms.len() as u64;
        computed.terms.push(term.clone());
        computed.ids.insert(term.clone(), id);
        id
    }

    /// Interns a runtime value.
    pub fn intern_value(&self, value: Value) -> u64 {
        self.intern_term(&value.into_term())
    }

    fn empty_row(&self) -> Row {
        vec![None; self.vars.len()]
    }
}

/// Expression environment over one row.
pub struct RowEnv<'a> {
    ctx: &'a EvalCtx<'a>,
    row: &'a Row,
    aggs: Option<&'a [Value]>,
}

impl ExprEnv for RowEnv<'_> {
    fn term_of_slot(&self, slot: usize) -> Option<Term> {
        self.row.get(slot).copied().flatten().and_then(|id| self.ctx.resolve(id))
    }
    fn id_of_slot(&self, slot: usize) -> Option<u64> {
        self.row.get(slot).copied().flatten()
    }
    fn kind_of_slot(&self, slot: usize) -> Option<TermKind> {
        self.row
            .get(slot)
            .copied()
            .flatten()
            .and_then(|id| self.ctx.kind(id))
    }
    fn aggregate_value(&self, index: usize) -> Option<Value> {
        self.aggs.and_then(|a| a.get(index).cloned())
    }
    fn exists(&self, index: usize) -> Option<bool> {
        let node = self.ctx.exists.get(index)?;
        let input: Box<dyn Iterator<Item = Row>> =
            Box::new(std::iter::once(self.row.clone()));
        Some(eval_node(self.ctx, node, input).next().is_some())
    }
}

/// Final results of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResults {
    /// SELECT solutions.
    Solutions(crate::results::Solutions),
    /// ASK verdict.
    Boolean(bool),
    /// CONSTRUCT output: deduplicated, sorted quads.
    Graph(Vec<rdf_model::Quad>),
}

/// Executes a compiled query against a dataset view.
pub fn execute_compiled(
    view: &DatasetView<'_>,
    compiled: &CompiledQuery,
) -> Result<QueryResults, SparqlError> {
    execute_compiled_with_limits(view, compiled, ExecLimits::default())
}

/// Executes a compiled query under resource limits: exceeding the row
/// budget or the deadline aborts with [`SparqlError::ResourceExhausted`].
pub fn execute_compiled_with_limits(
    view: &DatasetView<'_>,
    compiled: &CompiledQuery,
    limits: ExecLimits,
) -> Result<QueryResults, SparqlError> {
    let ctx = EvalCtx::with_exists(
        view.clone(),
        compiled.vars.clone(),
        compiled.exists.clone(),
    )
    .with_limits(limits);
    match &compiled.form {
        CForm::Select(sel) => {
            let rows = exec_select(&ctx, sel)?;
            let slots = sel.projected_slots();
            let vars: Vec<String> = slots
                .iter()
                .map(|&s| ctx.vars.name(s).to_string())
                .collect();
            let decoded = rows
                .into_iter()
                .map(|row| {
                    slots
                        .iter()
                        .map(|&s| row[s].and_then(|id| ctx.resolve(id)))
                        .collect()
                })
                .collect();
            Ok(QueryResults::Solutions(crate::results::Solutions { vars, rows: decoded }))
        }
        CForm::Ask(node) => {
            let input: BoxIter = Box::new(std::iter::once(ctx.empty_row()));
            let mut out = eval_node(&ctx, node, input);
            let answer = out.next().is_some();
            if let Some(reason) = ctx.exhaustion() {
                return Err(SparqlError::ResourceExhausted(reason));
            }
            Ok(QueryResults::Boolean(answer))
        }
        CForm::Construct(templates, sel) => {
            let rows = exec_select(&ctx, sel)?;
            let slots = sel.projected_slots();
            let vars: Vec<String> = slots
                .iter()
                .map(|&s| ctx.vars.name(s).to_string())
                .collect();
            let decoded: Vec<Vec<Option<Term>>> = rows
                .into_iter()
                .map(|row| {
                    slots
                        .iter()
                        .map(|&s| row[s].and_then(|id| ctx.resolve(id)))
                        .collect()
                })
                .collect();
            let solutions = crate::results::Solutions { vars, rows: decoded };
            let mut quads = crate::update::instantiate(templates, &solutions);
            quads.sort();
            quads.dedup();
            Ok(QueryResults::Graph(quads))
        }
    }
}

/// Evaluates a SELECT pipeline, returning full-width rows (all slots).
pub fn exec_select(ctx: &EvalCtx<'_>, sel: &CSelect) -> Result<Vec<Row>, SparqlError> {
    let input: BoxIter = Box::new(std::iter::once(ctx.empty_row()));
    let solutions = eval_node(ctx, &sel.root, input);

    let mut rows: Vec<Row> = if sel.is_grouped() {
        group_and_aggregate(ctx, sel, solutions)?
    } else {
        let mut rows: Vec<Row> = solutions.collect();
        // Compute expression projections per row.
        for proj in &sel.projection {
            if let Some(expr) = &proj.expr {
                for row in &mut rows {
                    let env = RowEnv { ctx, row, aggs: None };
                    let value = expr.eval(&env);
                    row[proj.slot] = value.map(|v| ctx.intern_value(v));
                }
            }
        }
        rows
    };

    // A limit hit anywhere below — including inside a sub-select whose
    // error was discarded — surfaces here rather than as silently
    // truncated results.
    if let Some(reason) = ctx.exhaustion() {
        return Err(SparqlError::ResourceExhausted(reason));
    }

    if !sel.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Option<Value>>, Row)> = rows
            .into_iter()
            .map(|row| {
                let keys = sel
                    .order_by
                    .iter()
                    .map(|(expr, _)| {
                        let env = RowEnv { ctx, row: &row, aggs: None };
                        expr.eval(&env)
                    })
                    .collect();
                (keys, row)
            })
            .collect();
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, (_, desc)) in sel.order_by.iter().enumerate() {
                let ord = match (&ka[i], &kb[i]) {
                    (Some(a), Some(b)) => a.sparql_cmp(b),
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (None, None) => std::cmp::Ordering::Equal,
                };
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = keyed.into_iter().map(|(_, row)| row).collect();
    }

    // Narrow rows to projected slots (for DISTINCT and sub-select reuse).
    let slots = sel.projected_slots();
    let mut projected: Vec<Row> = rows
        .into_iter()
        .map(|row| {
            let mut out = ctx.empty_row();
            for &s in &slots {
                out[s] = row[s];
            }
            out
        })
        .collect();

    if sel.distinct {
        let mut seen = HashSet::new();
        projected.retain(|row| {
            let key: Vec<Option<u64>> = slots.iter().map(|&s| row[s]).collect();
            seen.insert(key)
        });
    }

    let offset = sel.offset.unwrap_or(0);
    if offset > 0 {
        projected = projected.into_iter().skip(offset).collect();
    }
    if let Some(limit) = sel.limit {
        projected.truncate(limit);
    }
    Ok(projected)
}

enum Acc {
    CountAll(u64),
    Count(u64),
    CountDistinct(HashSet<u64>),
    Sum { int: i64, float: f64, any_float: bool, seen: bool },
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(agg: &CAggregate) -> Acc {
        match agg {
            CAggregate::CountAll => Acc::CountAll(0),
            CAggregate::Count { distinct: true, .. } => Acc::CountDistinct(HashSet::new()),
            CAggregate::Count { .. } => Acc::Count(0),
            CAggregate::Sum(_) => Acc::Sum { int: 0, float: 0.0, any_float: false, seen: false },
            CAggregate::Avg(_) => Acc::Avg { sum: 0.0, n: 0 },
            CAggregate::Min(_) => Acc::Min(None),
            CAggregate::Max(_) => Acc::Max(None),
        }
    }

    fn update(&mut self, ctx: &EvalCtx<'_>, agg: &CAggregate, row: &Row) {
        let eval = |expr: &CExpr| {
            let env = RowEnv { ctx, row, aggs: None };
            expr.eval(&env)
        };
        match (self, agg) {
            (Acc::CountAll(n), _) => *n += 1,
            (Acc::Count(n), CAggregate::Count { expr, .. }) => {
                if eval(expr).is_some() {
                    *n += 1;
                }
            }
            (Acc::CountDistinct(set), CAggregate::Count { expr, .. }) => {
                if let Some(v) = eval(expr) {
                    set.insert(ctx.intern_value(v));
                }
            }
            (Acc::Sum { int, float, any_float, seen }, CAggregate::Sum(expr)) => {
                if let Some(v) = eval(expr) {
                    match v {
                        Value::Int(i) => *int += i,
                        other => {
                            if let Some(f) = other.as_number() {
                                *float += f;
                                *any_float = true;
                            } else {
                                return;
                            }
                        }
                    }
                    *seen = true;
                }
            }
            (Acc::Avg { sum, n }, CAggregate::Avg(expr)) => {
                if let Some(f) = eval(expr).and_then(|v| v.as_number()) {
                    *sum += f;
                    *n += 1;
                }
            }
            (Acc::Min(best), CAggregate::Min(expr)) => {
                if let Some(v) = eval(expr) {
                    let replace = best
                        .as_ref()
                        .map(|b| v.sparql_cmp(b) == std::cmp::Ordering::Less)
                        .unwrap_or(true);
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            (Acc::Max(best), CAggregate::Max(expr)) => {
                if let Some(v) = eval(expr) {
                    let replace = best
                        .as_ref()
                        .map(|b| v.sparql_cmp(b) == std::cmp::Ordering::Greater)
                        .unwrap_or(true);
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            _ => unreachable!("accumulator/aggregate mismatch"),
        }
    }

    fn finish(self) -> Option<Value> {
        match self {
            Acc::CountAll(n) | Acc::Count(n) => Some(Value::Int(n as i64)),
            Acc::CountDistinct(set) => Some(Value::Int(set.len() as i64)),
            Acc::Sum { int, float, any_float, seen } => {
                if !seen {
                    Some(Value::Int(0))
                } else if any_float {
                    Some(Value::Float(float + int as f64))
                } else {
                    Some(Value::Int(int))
                }
            }
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Some(Value::Int(0))
                } else {
                    Some(Value::Float(sum / n as f64))
                }
            }
            Acc::Min(v) | Acc::Max(v) => v,
        }
    }
}

fn group_and_aggregate(
    ctx: &EvalCtx<'_>,
    sel: &CSelect,
    solutions: BoxIter<'_>,
) -> Result<Vec<Row>, SparqlError> {
    let mut groups: HashMap<Vec<Option<u64>>, Vec<Acc>> = HashMap::new();
    let make_accs = || sel.aggregates.iter().map(Acc::new).collect::<Vec<_>>();
    let mut saw_rows = false;
    for row in solutions {
        saw_rows = true;
        let key: Vec<Option<u64>> = sel.group_slots.iter().map(|&s| row[s]).collect();
        let accs = groups.entry(key).or_insert_with(make_accs);
        for (acc, agg) in accs.iter_mut().zip(&sel.aggregates) {
            acc.update(ctx, agg, &row);
        }
    }
    // SPARQL: aggregation without GROUP BY over zero rows yields one group.
    if !saw_rows && sel.group_slots.is_empty() {
        groups.insert(Vec::new(), make_accs());
    }

    let mut out = Vec::with_capacity(groups.len());
    for (key, accs) in groups {
        let agg_values: Vec<Value> = accs
            .into_iter()
            .map(|a| a.finish().unwrap_or(Value::Int(0)))
            .collect();
        let mut row = ctx.empty_row();
        for (slot, v) in sel.group_slots.iter().zip(&key) {
            row[*slot] = *v;
        }
        for proj in &sel.projection {
            if let Some(expr) = &proj.expr {
                let env = RowEnv { ctx, row: &row, aggs: Some(&agg_values) };
                row[proj.slot] = expr.eval(&env).map(|v| ctx.intern_value(v));
            } else if !sel.group_slots.contains(&proj.slot) {
                return Err(SparqlError::Unsupported(format!(
                    "variable ?{} projected out of a grouped query but not in GROUP BY",
                    ctx.vars.name(proj.slot)
                )));
            }
        }
        // HAVING: post-aggregation filter (projection aliases like the
        // `?n` of `HAVING (?n > 1)` are in scope by now).
        let keep = sel.having.iter().all(|h| {
            let env = RowEnv { ctx, row: &row, aggs: Some(&agg_values) };
            h.eval_filter(&env)
        });
        if !keep {
            continue;
        }
        out.push(row);
    }
    Ok(out)
}

/// Evaluates one compiled node, streaming input rows through it.
pub fn eval_node<'it>(ctx: &'it EvalCtx<'_>, node: &'it Node, input: BoxIter<'it>) -> BoxIter<'it> {
    match node {
        Node::Steps(steps) => {
            let mut stream = input;
            for step in steps {
                stream = eval_step(ctx, step, stream);
            }
            stream
        }
        Node::Path(pstep) => Box::new(input.flat_map(move |row| {
            let s_val = pos_value(&row, &pstep.s);
            let o_val = pos_value(&row, &pstep.o);
            // Computed IDs never match stored quads.
            let bad = |v: &Option<Option<u64>>| matches!(v, Some(None));
            if bad(&s_val) || bad(&o_val) {
                return Vec::new().into_iter();
            }
            let pairs =
                path::eval_path_pairs(&ctx.view, &pstep.path, pstep.graph, s_val.flatten(), o_val.flatten());
            let mut out = Vec::new();
            for (s, o) in pairs {
                let mut new_row = row.clone();
                if extend_pos(&mut new_row, &pstep.s, s) && extend_pos(&mut new_row, &pstep.o, o) {
                    if !ctx.charge(1) {
                        break;
                    }
                    out.push(new_row);
                }
            }
            out.into_iter()
        })),
        Node::Join(children) => {
            let mut stream = input;
            for child in children {
                stream = eval_node(ctx, child, stream);
            }
            stream
        }
        Node::Filter(filters, inner) => {
            let stream = eval_node(ctx, inner, input);
            Box::new(stream.filter(move |row| {
                filters.iter().all(|f| {
                    let env = RowEnv { ctx, row, aggs: None };
                    f.eval_filter(&env)
                })
            }))
        }
        Node::Union(a, b) => {
            let rows: Vec<Row> = input.collect();
            let left: BoxIter = Box::new(rows.clone().into_iter());
            let right: BoxIter = Box::new(rows.into_iter());
            Box::new(eval_node(ctx, a, left).chain(eval_node(ctx, b, right)))
        }
        Node::Optional(a, b) => {
            let left = eval_node(ctx, a, input);
            Box::new(left.flat_map(move |row| {
                let probe: BoxIter = Box::new(std::iter::once(row.clone()));
                let matches: Vec<Row> = eval_node(ctx, b, probe).collect();
                if matches.is_empty() {
                    vec![row].into_iter()
                } else {
                    matches.into_iter()
                }
            }))
        }
        Node::SubSelect(sel) => {
            let inner = match exec_select(ctx, sel) {
                Ok(rows) => rows,
                Err(_) => Vec::new(),
            };
            let input_rows: Vec<Row> = input.collect();
            let slots = sel.projected_slots();
            // Join keys: projected slots bound in every input row.
            let join_slots: Vec<usize> = slots
                .iter()
                .copied()
                .filter(|&s| !input_rows.is_empty() && input_rows.iter().all(|r| r[s].is_some()))
                .collect();
            let mut table: HashMap<Vec<u64>, Vec<Row>> = HashMap::new();
            for irow in inner {
                let key: Option<Vec<u64>> = join_slots.iter().map(|&s| irow[s]).collect();
                if let Some(key) = key {
                    table.entry(key).or_default().push(irow);
                }
            }
            Box::new(input_rows.into_iter().flat_map(move |row| {
                let key: Vec<u64> = join_slots
                    .iter()
                    .map(|&s| row[s].expect("join slot bound in all input rows"))
                    .collect();
                let mut out = Vec::new();
                if let Some(matches) = table.get(&key) {
                    'outer: for m in matches {
                        let mut merged = row.clone();
                        for &s in &slots {
                            match (merged[s], m[s]) {
                                (Some(a), Some(b)) if a != b => continue 'outer,
                                (None, b) => merged[s] = b,
                                _ => {}
                            }
                        }
                        out.push(merged);
                    }
                }
                out.into_iter()
            }))
        }
        Node::Values { slots, rows } => {
            let resolved: Vec<Vec<Option<u64>>> = rows
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|t| t.as_ref().map(|t| ctx.intern_term(t)))
                        .collect()
                })
                .collect();
            let slots = slots.clone();
            Box::new(input.flat_map(move |row| {
                let mut out = Vec::new();
                'rows: for vrow in &resolved {
                    let mut merged = row.clone();
                    for (&slot, value) in slots.iter().zip(vrow) {
                        if let Some(v) = value {
                            match merged[slot] {
                                Some(existing) if existing != *v => continue 'rows,
                                _ => merged[slot] = Some(*v),
                            }
                        }
                    }
                    out.push(merged);
                }
                out.into_iter()
            }))
        }
        Node::Extend(slot, expr) => {
            let slot = *slot;
            Box::new(input.map(move |mut row| {
                let value = {
                    let env = RowEnv { ctx, row: &row, aggs: None };
                    expr.eval(&env)
                };
                // Per SPARQL, a BIND error leaves the variable unbound; a
                // conflict with an existing binding drops nothing here
                // because the parser guarantees a fresh variable.
                row[slot] = value.map(|v| ctx.intern_value(v));
                row
            }))
        }
        Node::Minus(inner) => {
            // MINUS: evaluate the inner pattern bottom-up once, then drop
            // input rows that are compatible with (and share at least one
            // bound variable with) some inner solution.
            let probe: BoxIter = Box::new(std::iter::once(ctx.empty_row()));
            let right: Vec<Row> = eval_node(ctx, inner, probe).collect();
            Box::new(input.filter(move |row| {
                !right.iter().any(|r| {
                    let mut shared = false;
                    for (a, b) in row.iter().zip(r.iter()) {
                        if let (Some(x), Some(y)) = (a, b) {
                            if x != y {
                                return false;
                            }
                            shared = true;
                        }
                    }
                    shared
                })
            }))
        }
    }
}

fn eval_step<'it>(ctx: &'it EvalCtx<'_>, step: &'it Step, input: BoxIter<'it>) -> BoxIter<'it> {
    match &step.strategy {
        Strategy::IndexNlj => Box::new(input.flat_map(move |row| {
            let mut out = Vec::new();
            if let Some(pattern) = probe_pattern(&row, &step.triple) {
                for quad in ctx.view.scan(pattern) {
                    if let Some(new_row) = extend_row(&row, &step.triple, &quad) {
                        if !ctx.charge(1) {
                            break;
                        }
                        out.push(new_row);
                    }
                }
            }
            out.into_iter()
        })),
        Strategy::HashJoin { join_slots } => {
            Box::new(HashJoinIter::new(ctx, step, join_slots, input))
        }
    }
}

/// Lazily-built hash join: the build side (a scan of the step's pattern
/// with constants only — typically a full index scan) is materialised into
/// a hash table on first use, then probed once per input row.
struct HashJoinIter<'it, 'a> {
    ctx: &'it EvalCtx<'a>,
    step: &'it Step,
    join_slots: &'it [usize],
    input: BoxIter<'it>,
    table: Option<HashMap<Vec<u64>, Vec<quadstore::EncodedQuad>>>,
    pending: std::vec::IntoIter<Row>,
}

impl<'it, 'a> HashJoinIter<'it, 'a> {
    fn new(
        ctx: &'it EvalCtx<'a>,
        step: &'it Step,
        join_slots: &'it [usize],
        input: BoxIter<'it>,
    ) -> Self {
        HashJoinIter { ctx, step, join_slots, input, table: None, pending: Vec::new().into_iter() }
    }

    fn build(&mut self) {
        let mut table: HashMap<Vec<u64>, Vec<quadstore::EncodedQuad>> = HashMap::new();
        if !self.step.triple.unsatisfiable() {
            let positions = key_positions(&self.step.triple, self.join_slots);
            for quad in self.ctx.view.scan(self.step.triple.const_pattern()) {
                let key: Vec<u64> = positions.iter().map(|&p| quad[p]).collect();
                table.entry(key).or_default().push(quad);
            }
        }
        self.table = Some(table);
    }
}

impl Iterator for HashJoinIter<'_, '_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some(row) = self.pending.next() {
                return Some(row);
            }
            if self.table.is_none() {
                self.build();
            }
            let row = self.input.next()?;
            // Join keys are usually bound — but OPTIONAL/VALUES can leave a
            // planned-bound slot UNDEF at runtime. A row with a computed ID
            // in a join slot can never match stored quads; a row with an
            // unbound slot falls back to a per-row index scan (NLJ-style).
            if self
                .join_slots
                .iter()
                .any(|&s| matches!(row[s], Some(id) if id & COMPUTED_BIT != 0))
            {
                continue;
            }
            if self.join_slots.iter().any(|&s| row[s].is_none()) {
                if let Some(pattern) = probe_pattern(&row, &self.step.triple) {
                    let mut out = Vec::new();
                    for quad in self.ctx.view.scan(pattern) {
                        if let Some(new_row) = extend_row(&row, &self.step.triple, &quad) {
                            if !self.ctx.charge(1) {
                                return None;
                            }
                            out.push(new_row);
                        }
                    }
                    self.pending = out.into_iter();
                }
                continue;
            }
            let key: Vec<u64> = self
                .join_slots
                .iter()
                .map(|&s| row[s].expect("checked above"))
                .collect();
            let table = self.table.as_ref().expect("built above");
            if let Some(quads) = table.get(&key) {
                let mut out = Vec::with_capacity(quads.len());
                for quad in quads {
                    if let Some(new_row) = extend_row(&row, &self.step.triple, quad) {
                        if !self.ctx.charge(1) {
                            return None;
                        }
                        out.push(new_row);
                    }
                }
                self.pending = out.into_iter();
            }
        }
    }
}

/// The quad position each join slot is keyed on (first occurrence).
fn key_positions(triple: &CTriple, join_slots: &[usize]) -> Vec<usize> {
    join_slots
        .iter()
        .map(|&slot| {
            if triple.s.slot() == Some(slot) {
                quadstore::ids::S
            } else if triple.p.slot() == Some(slot) {
                quadstore::ids::P
            } else if triple.o.slot() == Some(slot) {
                quadstore::ids::O
            } else if matches!(triple.g, CGraph::Var(g) if g == slot) {
                quadstore::ids::G
            } else {
                unreachable!("join slot not in triple")
            }
        })
        .collect()
}

/// The value a position contributes given a row: `None` = unbound,
/// `Some(None)` = bound to something that cannot match stored quads
/// (a missing constant or computed ID), `Some(Some(id))` = bound.
fn pos_value(row: &Row, pos: &CPos) -> Option<Option<u64>> {
    match pos {
        CPos::Var(slot) => row[*slot].map(|id| {
            if id & COMPUTED_BIT != 0 {
                None
            } else {
                Some(id)
            }
        }),
        CPos::Const(_, Some(id)) => Some(Some(id.0)),
        CPos::Const(_, None) => Some(None),
    }
}

/// The scan pattern for a probe with the given row; `None` means the probe
/// cannot match anything.
fn probe_pattern(row: &Row, triple: &CTriple) -> Option<QuadPattern> {
    let resolve = |pos: &CPos| -> Result<Option<TermId>, ()> {
        match pos_value(row, pos) {
            None => Ok(None),
            Some(Some(id)) => Ok(Some(TermId(id))),
            Some(None) => Err(()),
        }
    };
    let s = resolve(&triple.s).ok()?;
    let p = resolve(&triple.p).ok()?;
    let o = resolve(&triple.o).ok()?;
    let g = match &triple.g {
        CGraph::Any => GraphConstraint::Any,
        CGraph::Default => GraphConstraint::DefaultOnly,
        CGraph::Const(_, Some(id)) => GraphConstraint::Named(*id),
        CGraph::Const(_, None) => return None,
        CGraph::Var(slot) => match row[*slot] {
            Some(id) if id & COMPUTED_BIT != 0 => return None,
            Some(id) => GraphConstraint::Named(TermId(id)),
            None => GraphConstraint::AnyNamed,
        },
    };
    Some(QuadPattern { s, p, o, g })
}

/// Extends a row with a matched quad, checking consistency for slots that
/// are already bound (repeated variables, join keys).
fn extend_row(row: &Row, triple: &CTriple, quad: &quadstore::EncodedQuad) -> Option<Row> {
    let mut new_row = row.clone();
    let mut set = |slot: usize, value: u64| -> bool {
        match new_row[slot] {
            Some(existing) => existing == value,
            None => {
                new_row[slot] = Some(value);
                true
            }
        }
    };
    if let CPos::Var(s) = &triple.s {
        if !set(*s, quad[quadstore::ids::S]) {
            return None;
        }
    } else if let CPos::Const(_, Some(id)) = &triple.s {
        if id.0 != quad[quadstore::ids::S] {
            return None;
        }
    }
    if let CPos::Var(s) = &triple.p {
        if !set(*s, quad[quadstore::ids::P]) {
            return None;
        }
    } else if let CPos::Const(_, Some(id)) = &triple.p {
        if id.0 != quad[quadstore::ids::P] {
            return None;
        }
    }
    if let CPos::Var(s) = &triple.o {
        if !set(*s, quad[quadstore::ids::O]) {
            return None;
        }
    } else if let CPos::Const(_, Some(id)) = &triple.o {
        if id.0 != quad[quadstore::ids::O] {
            return None;
        }
    }
    if let CGraph::Var(s) = &triple.g {
        if !set(*s, quad[quadstore::ids::G]) {
            return None;
        }
    }
    Some(new_row)
}

fn extend_pos(row: &mut Row, pos: &CPos, value: u64) -> bool {
    match pos {
        CPos::Var(slot) => match row[*slot] {
            Some(existing) => existing == value,
            None => {
                row[*slot] = Some(value);
                true
            }
        },
        CPos::Const(_, Some(id)) => id.0 == value,
        CPos::Const(_, None) => false,
    }
}
