//! # sparql
//!
//! A SPARQL 1.1 subset engine over the `quadstore` crate: lexer, parser,
//! compiler/planner, streaming executor, property paths, aggregation,
//! sub-selects, `EXPLAIN`, and SPARQL Update. The subset covers every
//! query in the paper (Tables 3, 5, 10 and the §5.2 linked-data examples)
//! without modification.
//!
//! ```
//! use quadstore::Store;
//! use rdf_model::{Quad, Term};
//!
//! let store = Store::new();
//! store.create_model("m").unwrap();
//! store.bulk_load("m", &[
//!     Quad::triple(Term::iri("http://pg/v1"), Term::iri("http://pg/k/name"),
//!                  Term::string("Amy")).unwrap(),
//! ]).unwrap();
//!
//! let results = sparql::query(&store, "m",
//!     "PREFIX key: <http://pg/k/> SELECT ?n WHERE { ?n key:name \"Amy\" }").unwrap();
//! match results {
//!     sparql::QueryResults::Solutions(s) => assert_eq!(s.len(), 1),
//!     _ => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod cache;
pub(crate) mod cost;
pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod json;
pub mod lexer;
pub mod logical;
pub(crate) mod metrics;
pub mod parser;
pub mod path;
pub mod plan;
pub mod profile;
pub mod results;
pub mod rewrite;
pub mod update;

pub use ast::{Query, Update};
pub use cache::{PlanCache, PlanCacheEntryInfo, DEFAULT_PLAN_CACHE_CAPACITY};
pub use error::SparqlError;
pub use exec::{
    default_max_memory, execute_compiled, execute_compiled_with_limits,
    execute_compiled_with_options, execute_profiled, set_default_max_memory, CancelToken,
    ExecLimits, ExecObserver, ExecOptions, ExecProfile, QueryResults, StepTally,
    DEFAULT_BATCH_SIZE, DEFAULT_MORSEL_SIZE,
};
pub use parser::{parse_query, parse_update};
pub use plan::{compile, compile_with, CompileOptions, CompiledQuery, ForcedJoin};
pub use profile::{QueryProfile, StepProfile};
pub use results::Solutions;
pub use update::{execute_update, UpdateStats};

use quadstore::{DatasetView, Store};

/// Parses, compiles, and executes a query against a named model or
/// virtual model.
pub fn query(store: &Store, dataset: &str, text: &str) -> Result<QueryResults, SparqlError> {
    let view = store.dataset(dataset)?;
    query_view(&view, text)
}

/// Parses, compiles, and executes a query against a dataset view (e.g. a
/// union of models, §3.2).
pub fn query_view(view: &DatasetView, text: &str) -> Result<QueryResults, SparqlError> {
    let parsed = parse_query(text)?;
    let compiled = compile(view, &parsed)?;
    execute_compiled(view, &compiled)
}

/// [`query`] under resource limits: execution aborts with
/// [`SparqlError::ResourceExhausted`] when the row budget or deadline of
/// `limits` is exceeded.
pub fn query_with_limits(
    store: &Store,
    dataset: &str,
    text: &str,
    limits: ExecLimits,
) -> Result<QueryResults, SparqlError> {
    let view = store.dataset(dataset)?;
    let parsed = parse_query(text)?;
    let compiled = compile(&view, &parsed)?;
    execute_compiled_with_limits(&view, &compiled, limits)
}

/// [`query`] with explicit execution options (worker threads, morsel
/// size, resource limits). `ExecOptions::threads(1)` reproduces the
/// sequential streaming path bit-for-bit.
pub fn query_with_options(
    store: &Store,
    dataset: &str,
    text: &str,
    options: ExecOptions,
) -> Result<QueryResults, SparqlError> {
    let view = store.dataset(dataset)?;
    let parsed = parse_query(text)?;
    let compiled = compile(&view, &parsed)?;
    execute_compiled_with_options(&view, &compiled, options)
}

/// Convenience: run a SELECT and return its solutions (errors on ASK).
pub fn select(store: &Store, dataset: &str, text: &str) -> Result<Solutions, SparqlError> {
    match query(store, dataset, text)? {
        QueryResults::Solutions(s) => Ok(s),
        QueryResults::Boolean(_) | QueryResults::Graph(_) => Err(SparqlError::Unsupported(
            "expected a SELECT query".into(),
        )),
    }
}

/// Convenience: run a CONSTRUCT and return its quads (errors otherwise).
pub fn construct(
    store: &Store,
    dataset: &str,
    text: &str,
) -> Result<Vec<rdf_model::Quad>, SparqlError> {
    match query(store, dataset, text)? {
        QueryResults::Graph(quads) => Ok(quads),
        _ => Err(SparqlError::Unsupported("expected a CONSTRUCT query".into())),
    }
}

/// Renders the execution plan of a query (the Table 5 analogue).
pub fn explain_query(store: &Store, dataset: &str, text: &str) -> Result<String, SparqlError> {
    let view = store.dataset(dataset)?;
    let parsed = parse_query(text)?;
    let compiled = compile(&view, &parsed)?;
    Ok(explain::render(&compiled))
}

/// Renders the rewritten logical plan of a query — the optimizer's
/// intermediate algebra plus the rewrite rules that fired.
pub fn explain_logical_query(
    store: &Store,
    dataset: &str,
    text: &str,
) -> Result<String, SparqlError> {
    let view = store.dataset(dataset)?;
    let parsed = parse_query(text)?;
    let compiled = compile(&view, &parsed)?;
    Ok(compiled.logical.clone())
}

/// Parses and executes a SPARQL Update against a semantic model. Each
/// statement applies atomically (see [`execute_update`]), so the store
/// can be shared with concurrent readers.
pub fn update(store: &Store, model: &str, text: &str) -> Result<UpdateStats, SparqlError> {
    let parsed = parse_update(text)?;
    execute_update(store, model, &parsed)
}
