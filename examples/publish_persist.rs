//! Publishing and persistence: the operational side of PG-as-RDF.
//!
//! The paper's §1 benefits include publishing property-graph data "as RDF
//! linked data on the web" and using the RDF store as "backend storage
//! for large property graph datasets". This example exercises both:
//!
//! 1. export the Figure 1 graph as Turtle and N-Quads;
//! 2. reshape it with CONSTRUCT (derive a FOAF-ish view);
//! 3. serve SELECT results in the W3C SPARQL JSON format;
//! 4. save the store to disk and reload it.
//!
//! ```sh
//! cargo run --example publish_persist
//! ```

use pgrdf::{publish, PgRdfModel, PgRdfStore};
use propertygraph::PropertyGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = PropertyGraph::sample_figure1();
    let store = PgRdfStore::load(&graph, PgRdfModel::NG)?;

    // --- 1. Linked-data export. ---
    println!("=== Turtle (named graphs flattened) ===");
    println!("{}", publish::to_turtle(&store)?);
    println!("=== N-Quads (lossless) ===");
    print!("{}", publish::to_nquads(&store));

    // --- 2. CONSTRUCT a FOAF-ish view of the social topology. ---
    let foaf = sparql::construct(
        store.store(),
        &store.dataset_name(),
        "PREFIX rel: <http://pg/r/>\n\
         PREFIX key: <http://pg/k/>\n\
         CONSTRUCT {\n\
           ?x <http://xmlns.com/foaf/0.1/knows> ?y .\n\
           ?x <http://xmlns.com/foaf/0.1/name> ?n\n\
         } WHERE {\n\
           ?x rel:knows ?y .\n\
           ?x key:name ?n\n\
         }",
    )?;
    println!("\n=== CONSTRUCTed FOAF view ===");
    for quad in &foaf {
        println!("{quad}");
    }
    assert_eq!(foaf.len(), 2);

    // --- 3. SPARQL JSON results (the service interchange format). ---
    let results = store.query(
        "PREFIX key: <http://pg/k/>\n\
         SELECT ?n ?age WHERE { ?x key:name ?n . ?x key:age ?age } ORDER BY ?n",
    )?;
    println!("\n=== application/sparql-results+json ===");
    println!("{}", sparql::json::to_json(&results));

    // --- 4. Persistence round trip. ---
    let dir = std::env::temp_dir().join(format!("pgrdf_example_{}", std::process::id()));
    store.save_to_dir(&dir)?;
    let reloaded = PgRdfStore::load_from_dir(&dir)?;
    std::fs::remove_dir_all(&dir)?;
    let back = reloaded.to_property_graph()?;
    println!(
        "\nreloaded from disk: {} quads -> {} vertices / {} edges (round trip OK)",
        reloaded.stats().quads,
        back.vertex_count(),
        back.edge_count()
    );
    assert_eq!(back.edge_count(), graph.edge_count());
    Ok(())
}
