//! Social network analytics on a Twitter-style ego-network graph (§4).
//!
//! Generates a scaled-down analogue of the paper's SNAP Twitter dataset,
//! loads it under both the NG and SP models with the §3.2 partitioned
//! layout, and walks through the five experiment families of §4.4:
//! node-centric, edge-centric, aggregates, traversal, triangles.
//!
//! ```sh
//! cargo run --release --example social_network [scale]
//! ```

use pgrdf::PgRdfModel;
use pgrdf_bench::{fmt_ms, Eq, Fixture};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    println!("generating Twitter-style dataset at scale {scale} (1.0 = paper size)...");
    let fixture = Fixture::at_scale(scale);
    println!(
        "graph: {} nodes, {} edges, {} node KVs, {} edge KVs; benchmark tag {:?}",
        fixture.graph.vertex_count(),
        fixture.graph.edge_count(),
        fixture.graph.node_kv_count(),
        fixture.graph.edge_kv_count(),
        fixture.tag,
    );

    let families: &[(&str, Vec<Eq>)] = &[
        ("node-centric", vec![Eq::Eq1, Eq::Eq2, Eq::Eq4]),
        ("edge-centric", vec![Eq::Eq5, Eq::Eq6, Eq::Eq8]),
        ("aggregates", vec![Eq::Eq9, Eq::Eq10]),
        ("traversal", vec![Eq::Eq11(1), Eq::Eq11(2), Eq::Eq11(3)]),
        ("triangles", vec![Eq::Eq12]),
    ];

    for (family, queries) in families {
        println!("\n[{family}]");
        for &eq in queries {
            for model in [PgRdfModel::NG, PgRdfModel::SP] {
                let text = fixture.query_text(eq, model);
                let dataset = fixture.dataset_for(eq, model);
                let (elapsed, rows) = fixture.run(eq, model);
                println!(
                    "  {:<7} {:<3} -> {:>8} rows in {:>10}  (dataset {})",
                    eq.label(model),
                    model.to_string(),
                    rows,
                    fmt_ms(elapsed),
                    dataset
                );
                if eq == Eq::Eq5 && model == PgRdfModel::NG {
                    println!("    query text:\n{}", indent(&text));
                }
            }
        }
    }

    // The store is snapshot-isolated (DESIGN.md §10): one fixture serves
    // many querying threads at once, each query pinned to a consistent
    // generation, while a writer commits DML without blocking any of them.
    println!("\n[concurrent readers + writer on one shared NG store]");
    let store = &fixture.ng;
    let dataset = fixture.dataset_for(Eq::Eq1, PgRdfModel::NG);
    let text = fixture.query_text(Eq::Eq1, PgRdfModel::NG);
    let t0 = std::time::Instant::now();
    let total: usize = std::thread::scope(|s| {
        let writer = s.spawn(|| {
            // Toggle a sentinel node-KV through the writer path; each
            // commit publishes a fresh generation.
            let raw = store.store();
            let names = store.partition_names().expect("fixture is partitioned");
            let quad = rdf_model::Quad::triple(
                rdf_model::Term::iri("http://example.org/sentinel"),
                rdf_model::Term::iri("http://example.org/k/name"),
                rdf_model::Term::string("social-network-demo"),
            )
            .expect("valid triple");
            let mut commits = 0usize;
            for _ in 0..50 {
                raw.insert(&names.node_kv, &quad).expect("insert");
                raw.remove(&names.node_kv, &quad).expect("remove");
                commits += 2;
            }
            commits
        });
        let readers: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let mut rows = 0usize;
                    for _ in 0..25 {
                        rows += store.select_in(&dataset, &text).expect("EQ1").len();
                    }
                    rows
                })
            })
            .collect();
        let commits = writer.join().expect("writer");
        println!("  writer: {commits} commits published while readers ran");
        readers.into_iter().map(|h| h.join().expect("reader")).sum()
    });
    println!(
        "  4 reader threads x 25 runs of EQ1: {total} rows total in {}",
        fmt_ms(t0.elapsed())
    );

    // The plans behind the numbers (Table 5).
    println!("\n[EXPLAIN EQ2 on NG]");
    let text = fixture.query_text(Eq::Eq2, PgRdfModel::NG);
    match fixture.ng.explain(&text) {
        Ok(plan) => println!("{plan}"),
        Err(e) => println!("explain failed: {e}"),
    }
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("      {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
