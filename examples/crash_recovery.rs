//! Crash-safe durability: the WAL + snapshot machinery end to end.
//!
//! The paper's §1 pitches the RDF store as "backend storage for large
//! property graph datasets"; backend storage must survive crashes, not
//! just restarts. This example:
//!
//! 1. opens a `DurableStore`, runs DDL + DML, and checkpoints;
//! 2. simulates a crash with the deterministic fault-injection VFS
//!    (the write dies half-way through its bytes);
//! 3. recovers, showing that every acknowledged operation survived and
//!    the torn WAL tail was truncated by its CRC check.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use std::sync::Arc;

use quadstore::{DurableStore, FaultPlan, FaultyVfs, SyncPolicy};
use rdf_model::{GraphName, Quad, Term};

fn follows(s: &str, o: &str, edge: &str) -> Quad {
    Quad::new(
        Term::iri(format!("http://pg/{s}")),
        Term::iri("http://pg/r/follows"),
        Term::iri(format!("http://pg/{o}")),
        GraphName::iri(format!("http://pg/{edge}")),
    )
    .expect("valid quad")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("pgrdf_crash_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- 1. Normal operation: log, checkpoint, log some more. ---
    {
        let mut ds = DurableStore::open(&dir)?;
        ds.create_model("topology")?;
        ds.insert("topology", &follows("v1", "v2", "e1"))?;
        ds.insert("topology", &follows("v2", "v3", "e2"))?;
        let epoch = ds.checkpoint()?;
        ds.insert("topology", &follows("v3", "v1", "e3"))?;
        println!(
            "wrote 3 quads; snapshot epoch {epoch}, 1 record in the live WAL"
        );
    }

    // --- 2. Crash mid-write. The fault-injection VFS kills the process
    //        at a chosen write point: the WAL append persists only half
    //        its bytes, then every subsequent I/O fails. ---
    {
        let vfs = Arc::new(FaultyVfs::new(FaultPlan {
            kill_at: Some(0), // the very next write: the insert's WAL append
            ..Default::default()
        }));
        let faulty: Arc<FaultyVfs> = Arc::clone(&vfs);
        let mut ds = DurableStore::open_with(&dir, faulty, SyncPolicy::Always)?;
        let doomed = ds.insert("topology", &follows("v4", "v4", "e4"));
        println!(
            "injected crash during the 4th insert: {}",
            doomed.expect_err("the injected crash fails the insert")
        );
        assert!(vfs.crashed());
    }

    // --- 3. Recovery: the torn frame fails its CRC and is truncated;
    //        all three acknowledged quads are intact. ---
    let recovered = quadstore::recover_from_dir(&dir)?;
    println!(
        "recovered epoch {} + {} WAL record(s); torn tail: {}",
        recovered.epoch,
        recovered.wal_records,
        recovered.wal_truncated.as_deref().unwrap_or("none"),
    );
    let ds = DurableStore::open(&dir)?; // also truncates the torn tail
    assert_eq!(ds.store().model("topology").expect("model").len(), 3);
    println!(
        "store holds {} quads — every acknowledged write survived",
        ds.store().model("topology").expect("model").len()
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
