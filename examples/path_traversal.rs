//! Path queries two ways: SPARQL property paths vs procedural traversal.
//!
//! §5.1 of the paper notes SPARQL 1.1 property paths cannot bound path
//! length or return paths; §6 suggests "performing traversal procedurally
//! similar to the approach of Gremlin" for such cases. This example runs
//! the same reachability workload both ways and checks they agree.
//!
//! ```sh
//! cargo run --release --example path_traversal
//! ```

use pgrdf::{PgRdfModel, PgRdfStore};
use propertygraph::{enumerate_paths, shortest_path, PropertyGraph, Traversal};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small follower web with a hub, a chain, and a cycle.
    let mut graph = PropertyGraph::new();
    for (a, b) in [
        (1u64, 2u64), (1, 3), (1, 4),       // hub 1
        (2, 5), (3, 5), (4, 5),             // diamond into 5
        (5, 6), (6, 7), (7, 5),             // cycle 5-6-7
        (7, 8),
    ] {
        graph.add_edge(a, "follows", b);
    }
    let store = PgRdfStore::load(&graph, PgRdfModel::NG)?;
    let prefixes = "PREFIX r: <http://pg/r/>\n";

    // 1. Fixed-length paths: SPARQL sequence paths count path
    //    multiplicities (EQ11-style), and so does the procedural
    //    traversal.
    for hops in 1..=4 {
        let path = vec!["r:follows"; hops].join("/");
        let q = format!(
            "{prefixes}SELECT (COUNT(?y) AS ?cnt) WHERE {{ <http://pg/v1> {path} ?y }}"
        );
        let sparql_count = store.count(&q)? as u64;
        let procedural = Traversal::start(&graph, 1)
            .out_hops(Some("follows"), hops)
            .path_count();
        println!("paths of length {hops}: SPARQL={sparql_count} procedural={procedural}");
        assert_eq!(sparql_count, procedural);
    }

    // 2. Unbounded reachability: `r:follows+` (distinct nodes).
    let q = format!(
        "{prefixes}SELECT ?y WHERE {{ <http://pg/v1> r:follows+ ?y }}"
    );
    let reachable = store.select(&q)?;
    println!("\nnodes reachable from v1 via follows+: {}", reachable.len());
    assert_eq!(reachable.len(), 7); // 2,3,4,5,6,7,8

    // 3. What property paths cannot do (§5.1): bounded-length reachability
    //    with the bound as data — procedural traversal handles it.
    let within_two = Traversal::start(&graph, 1).out_hops(Some("follows"), 2);
    println!(
        "distinct nodes exactly two hops out: {} (procedurally)",
        within_two.distinct_count()
    );

    // 4. Alternation + inverse paths.
    let q = format!(
        "{prefixes}SELECT ?x WHERE {{ ?x (r:follows|^r:follows) <http://pg/v5> }}"
    );
    let neighbors = store.select(&q)?;
    println!("in- or out-neighbours of v5: {}", neighbors.len());

    // 5. Returning the paths themselves (§5.1: SPARQL "lacks the ability
    //    to reference a path directly in a query").
    let paths = enumerate_paths(&graph, 1, Some("follows"), 2, 100);
    println!("\nall 2-hop walks from v1:");
    for p in &paths {
        let rendered: Vec<String> = p.iter().map(|v| format!("v{v}")).collect();
        println!("  {}", rendered.join(" -> "));
    }
    assert_eq!(paths.len(), 3);

    let sp = shortest_path(&graph, 1, 8, Some("follows")).expect("8 reachable");
    println!(
        "shortest path v1 -> v8: {} ({} hops)",
        sp.iter().map(|v| format!("v{v}")).collect::<Vec<_>>().join(" -> "),
        sp.len() - 1
    );

    // 6. Cycle detection via ASK.
    let q = format!(
        "{prefixes}ASK {{ <http://pg/v5> r:follows+ <http://pg/v5> }}"
    );
    match store.query(&q)? {
        sparql::QueryResults::Boolean(b) => {
            println!("v5 lies on a follows-cycle: {b}");
            assert!(b);
        }
        _ => unreachable!(),
    }
    Ok(())
}
