//! Linked-data enrichment and inference (§5.2 of the paper).
//!
//! Once property-graph data is RDF, it can be linked with community
//! datasets and enriched by inference — "possibilities which go beyond
//! what one would normally do with property graphs". This example rebuilds
//! both §5.2 scenarios against small synthetic stand-ins:
//!
//! 1. **WordNet**: query-term expansion over synonym sets when searching
//!    the `:hasTag` attribute.
//! 2. **World Factbook**: a user-defined rule inferring `:hasTagR` edges
//!    that link tagged nodes directly to neighbouring countries.
//!
//! ```sh
//! cargo run --example linked_data
//! ```

use inference::{Atom, InferenceEngine, Rule, RuleTerm};
use pgrdf::{PgRdfModel, PgVocab};
use propertygraph::PropertyGraph;
use quadstore::{IndexKind, Store};
use rdf_model::{Quad, Term};

const WN: &str = "http://wordnet/";
const FB: &str = "http://factbook/";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The property graph: a few tagged Twitter-ish nodes. ---
    let mut graph = PropertyGraph::new();
    graph.add_vertex_with_props(1, [("hasTag", "#train")]);
    graph.add_vertex_with_props(2, [("hasTag", "#educate")]);
    graph.add_vertex_with_props(3, [("hasTag", "#prepare")]);
    graph.add_vertex_with_props(4, [("hasTag", "#Tampa")]);
    graph.add_vertex_with_props(5, [("hasTag", "#opera")]);
    graph.add_edge(1, "follows", 4);

    let vocab = PgVocab::default();
    let quads = pgrdf::convert(&graph, PgRdfModel::NG, &vocab);

    // --- Load PG-as-RDF and the two "community" datasets side by side. ---
    let mut store = Store::with_default_indexes(&IndexKind::PAPER_FOUR);
    store.create_model("twitter")?;
    store.bulk_load("twitter", &quads)?;

    // WordNet-style synsets: cognitive synonyms sharing a senseLabel.
    store.create_model("wordnet")?;
    let wordnet: Vec<Quad> = [
        ("synset-train", "train"),
        ("synset-train", "educate"),
        ("synset-train", "prepare"),
        ("synset-opera", "opera"),
    ]
    .iter()
    .flat_map(|(synset, word)| {
        vec![
            Quad::triple(
                Term::iri(format!("{WN}{synset}-{word}")),
                Term::iri(rdf_model::vocab::rdfs::LABEL),
                Term::string(*word),
            )
            .expect("valid triple"),
            Quad::triple(
                Term::iri(format!("{WN}{synset}-{word}")),
                Term::iri(format!("{WN}senseLabel")),
                Term::Literal(rdf_model::Literal::lang_string(
                    synset.trim_start_matches("synset-"),
                    "en-us",
                )),
            )
            .expect("valid triple"),
        ]
    })
    .collect();
    store.bulk_load("wordnet", &wordnet)?;

    // Factbook-style geography: Tampa is a port; USA borders its
    // neighbours.
    store.create_model("factbook")?;
    let factbook: Vec<Quad> = [
        (format!("{FB}USA"), format!("{FB}ports"), format!("{FB}Tampa")),
        (format!("{FB}USA"), format!("{FB}bndry"), format!("{FB}Canada")),
        (format!("{FB}USA"), format!("{FB}bndry"), format!("{FB}Mexico")),
    ]
    .iter()
    .map(|(s, p, o)| {
        Quad::triple(Term::iri(s.clone()), Term::iri(p.clone()), Term::iri(o.clone()))
            .expect("valid triple")
    })
    .collect();
    store.bulk_load("factbook", &factbook)?;

    // --- Scenario 1: query-term expansion via WordNet (§5.2). ---
    // For the input word "train" the paper's query returns the #train
    // matches plus #educate / #prepare via the shared synset.
    store.create_virtual_model("twitter+wordnet", &["twitter", "wordnet"])?;
    let expansion = r##"
        PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
        PREFIX wn: <http://wordnet/>
        PREFIX k: <http://pg/k/>
        SELECT ?n ?label WHERE {
          ?w wn:senseLabel "train"@en-us .
          ?w rdfs:label ?label .
          ?n k:hasTag ?y
          FILTER (STR(?y) = CONCAT("#", STR(?label)))
        }"##;
    let sols = sparql::select(&store, "twitter+wordnet", expansion)?;
    println!("query-term expansion for 'train' found {} tagged nodes:", sols.len());
    for row in &sols.rows {
        let node = row[0].as_ref().map(|t| t.str_value()).unwrap_or_default();
        let label = row[1].as_ref().map(|t| t.str_value()).unwrap_or_default();
        println!("  {node}  (via synonym {label:?})");
    }
    assert_eq!(sols.len(), 3, "train + educate + prepare");

    // --- Scenario 2: Factbook + user-defined rule inference (§5.2). ---
    // First a property chain: ports + borders => country neighbours near
    // the port. Then the paper's :hasTagR rule: a node tagged #X where X
    // is a port gets direct edges to the port's neighbouring countries.
    let mut engine = InferenceEngine::new();
    engine
        .add_rule(Rule::new(
            "port-neighbours",
            vec![
                Atom::new(
                    RuleTerm::var("country"),
                    RuleTerm::iri(&format!("{FB}ports")),
                    RuleTerm::var("port"),
                ),
                Atom::new(
                    RuleTerm::var("country"),
                    RuleTerm::iri(&format!("{FB}bndry")),
                    RuleTerm::var("nbr"),
                ),
            ],
            vec![Atom::new(
                RuleTerm::var("port"),
                RuleTerm::iri(&format!("{FB}nbr")),
                RuleTerm::var("nbr"),
            )],
        ))
        .map_err(|e| format!("rule rejected: {e}"))?;
    engine
        .add_rule(Rule::new(
            "hasTagR",
            vec![
                Atom::new(
                    RuleTerm::var("n"),
                    RuleTerm::iri("http://pg/k/hasTag"),
                    RuleTerm::Const(Term::string("#Tampa")),
                ),
                Atom::new(
                    RuleTerm::Const(Term::iri(format!("{FB}Tampa"))),
                    RuleTerm::iri(&format!("{FB}nbr")),
                    RuleTerm::var("nbr"),
                ),
            ],
            vec![Atom::new(
                RuleTerm::var("n"),
                RuleTerm::iri("http://pg/k/hasTagR"),
                RuleTerm::var("nbr"),
            )],
        ))
        .map_err(|e| format!("rule rejected: {e}"))?;

    let stats = engine.run(&mut store, &["twitter", "factbook"], "entailed")?;
    println!("\ninference derived {} facts in {} rounds", stats.derived, stats.rounds);

    store.create_virtual_model(
        "twitter+factbook+entailed",
        &["twitter", "factbook", "entailed"],
    )?;
    let neighbours = r#"
        PREFIX k: <http://pg/k/>
        SELECT ?n ?country WHERE { ?n k:hasTagR ?country }"#;
    let sols = sparql::select(&store, "twitter+factbook+entailed", neighbours)?;
    println!("inferred :hasTagR edges (node near-port country):");
    for row in &sols.rows {
        println!(
            "  {}  ->  {}",
            row[0].as_ref().map(|t| t.str_value()).unwrap_or_default(),
            row[1].as_ref().map(|t| t.str_value()).unwrap_or_default()
        );
    }
    assert_eq!(sols.len(), 2, "Canada and Mexico for the #Tampa node");
    Ok(())
}
