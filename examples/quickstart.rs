//! Quickstart: the paper's running example end to end.
//!
//! Builds the Figure 1 property graph (Amy follows Mira since 2007, knows
//! her from MIT), converts it to RDF under all three models, and runs the
//! §2 query "who follows whom since when?" against each.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pgrdf::{PgRdfModel, PgRdfStore};
use propertygraph::PropertyGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the Figure 1 property graph with the Blueprints-style API.
    let mut graph = PropertyGraph::new();
    graph.add_vertex_with_props(1, [("name", "Amy")]);
    graph.add_vertex_prop(1, "age", 23)?;
    graph.add_vertex_with_props(2, [("name", "Mira")]);
    graph.add_vertex_prop(2, "age", 22)?;
    let follows = graph.add_edge_with_id(3, 1, "follows", 2)?;
    graph.add_edge_prop(follows, "since", 2007)?;
    let knows = graph.add_edge_with_id(4, 1, "knows", 2)?;
    graph.add_edge_prop(knows, "firstMetAt", "MIT")?;

    println!("property graph: {} vertices, {} edges, {} node KVs, {} edge KVs",
        graph.vertex_count(), graph.edge_count(), graph.node_kv_count(), graph.edge_kv_count());

    // 2. The §2 query per model — "who follows whom since when?".
    let queries = [
        (PgRdfModel::RF, "\
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rel: <http://pg/r/>
PREFIX key: <http://pg/k/>
SELECT ?xname ?yname ?yr WHERE {
  ?r rdf:subject ?x .
  ?r rdf:predicate rel:follows .
  ?r rdf:object ?y .
  ?r key:since ?yr .
  ?x key:name ?xname .
  ?y key:name ?yname }"),
        (PgRdfModel::SP, "\
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX rel: <http://pg/r/>
PREFIX key: <http://pg/k/>
SELECT ?xname ?yname ?yr WHERE {
  ?x ?p ?y .
  ?p rdfs:subPropertyOf rel:follows .
  ?p key:since ?yr .
  ?x key:name ?xname .
  ?y key:name ?yname }"),
        (PgRdfModel::NG, "\
PREFIX rel: <http://pg/r/>
PREFIX key: <http://pg/k/>
SELECT ?xname ?yname ?yr WHERE {
  GRAPH ?g {?x rel:follows ?y .
            ?g key:since ?yr }
  ?x key:name ?xname .
  ?y key:name ?yname }"),
    ];

    for (model, query) in queries {
        // 3. Convert + load under this model.
        let store = PgRdfStore::load(&graph, model)?;
        println!("\n=== model {model}: {} quads stored ===", store.stats().quads);

        // 4. Run the paper's SPARQL query, unmodified.
        let sols = store.select(query)?;
        for row in &sols.rows {
            let cell = |i: usize| {
                row[i].as_ref().map(|t| t.str_value().to_string()).unwrap_or_default()
            };
            println!("{} follows {} since {}", cell(0), cell(1), cell(2));
        }

        // 5. Round-trip back to a property graph: nothing is lost.
        let back = store.to_property_graph()?;
        assert_eq!(back.edge_count(), graph.edge_count());
        assert_eq!(back.edge_kv_count(), graph.edge_kv_count());
        println!("round-trip OK ({} edges, {} edge KVs)", back.edge_count(), back.edge_kv_count());
    }
    Ok(())
}
